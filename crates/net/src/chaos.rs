//! Seeded chaos harness: thousands of epochs mixing honest loss, node
//! churn, and covert attacks, with exact classification of every
//! outcome.
//!
//! The harness drives [`crate::engine::Engine::run_epoch_recovering`]
//! and classifies each epoch against the engine's ground truth
//! (`aggregate_corrupted`):
//!
//! | result                    | corrupted | classification        |
//! |---------------------------|-----------|-----------------------|
//! | `Ok`                      | yes       | **false accept**      |
//! | `Ok`, wrong verified sum  | no        | **sum mismatch**      |
//! | `Ok`, correct sum         | no        | clean epoch           |
//! | `Err(VerificationFailed)` | yes       | detection (correct)   |
//! | `Err(VerificationFailed)` | no        | **false reject**      |
//! | `Err(Malformed)`          | any       | availability loss     |
//!
//! For a verifying scheme (SIES, SECOA) the bold rows must be zero over
//! any seed — that is what the reliability experiment and the
//! integration property tests assert. For the plain baseline, false
//! accepts are the *expected* outcome of attacks; the harness reports,
//! the caller decides what to assert.
//!
//! Every run is a pure function of [`ChaosConfig`] (including the seed):
//! crash sets, attack choices, readings, and per-frame loss all come
//! from one `StdRng`, so a failing seed replays exactly.

use crate::engine::{Attack, Engine};
use crate::radio::LossyRadio;
use crate::recovery::RecoveryConfig;
use crate::scheme::{AggregationScheme, SchemeError};
use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sies_core::Threads;
use sies_crypto::sha256::Sha256;
use sies_crypto::HashFunction;
use sies_telemetry as tel;
use sies_telemetry::EventKind;
use std::collections::HashSet;

/// Fault-injection mix for one chaos run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the single RNG that drives readings, crashes, attacks,
    /// and frame loss. Same seed + same config ⇒ identical run.
    pub seed: u64,
    /// Epochs to execute.
    pub epochs: u64,
    /// Per-frame loss probability for the lossy radio.
    pub loss_rate: f64,
    /// Link-layer retransmission budget per phase.
    pub max_retries: u32,
    /// Per-epoch probability that some non-root node crashes for the
    /// epoch (a crashed aggregator's live children re-attach to a
    /// backup parent; a crashed source just sits the epoch out).
    pub crash_prob: f64,
    /// Per-epoch probability that a covert attack is injected.
    pub attack_prob: f64,
    /// Largest sensor reading generated (inclusive).
    pub max_value: u64,
    /// Recovery-protocol policy.
    pub recovery: RecoveryConfig,
    /// Worker pool for the sharded source phase. Metrics are identical
    /// for every setting (the engine's determinism guarantee); only
    /// wall-clock time changes.
    pub threads: Threads,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            epochs: 1000,
            loss_rate: 0.1,
            max_retries: 3,
            crash_prob: 0.2,
            attack_prob: 0.2,
            max_value: 1000,
            recovery: RecoveryConfig::default(),
            threads: Threads::serial(),
        }
    }
}

/// Aggregate outcome of a chaos run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosMetrics {
    /// Seed the run used (recorded so results are replayable).
    pub seed: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Epochs that returned a verified (or unverified-by-design) sum.
    pub ok_epochs: u64,
    /// Epochs lost to availability (no PSR reached the querier).
    pub unavailable_epochs: u64,
    /// Epochs whose aggregate a covert attack actually corrupted.
    pub corrupted_epochs: u64,
    /// Corrupted epochs the scheme rejected — the detection count.
    pub detected_corruptions: u64,
    /// Corrupted epochs the scheme *accepted*: must be zero for SIES.
    pub false_accepts: u64,
    /// Clean epochs the scheme rejected: must be zero for every scheme.
    pub false_rejects: u64,
    /// Accepted epochs whose sum differed from the ground-truth sum over
    /// the reported contributors: must be zero for exact schemes.
    pub sum_mismatches: u64,
    /// Epochs in which at least one node crashed.
    pub crash_epochs: u64,
    /// Epochs in which a covert attack was injected (it may still have
    /// missed, e.g. its target subtree was honestly lost first).
    pub attack_epochs: u64,
    /// Orphans re-homed to backup parents across the run.
    pub adoptions: u64,
    /// Uplink transfers delivered under the recovery protocol.
    pub delivered_links: u64,
    /// Uplink transfers lost after all re-solicitation rounds.
    pub lost_links: u64,
    /// Transfers that only succeeded in a re-solicited phase.
    pub recovered_by_resolicit: u64,
    /// Re-solicitation rounds run.
    pub resolicitations: u64,
    /// Sources excluded by a fallible `source_init`.
    pub init_failures: u64,
    /// Subtrees excluded by a fallible `merge`.
    pub merge_failures: u64,
    /// First-copy data bytes (Table V classes).
    pub data_bytes: u64,
    /// Bytes spent on retransmitted data frames.
    pub retransmit_bytes: u64,
    /// Bytes spent on ACK/NACK/re-solicit/re-attach/failure reports.
    pub control_bytes: u64,
    /// Hex SHA-256 over every epoch's verdict, sum bits, corruption
    /// flag, and contributor set — the run's result fingerprint. Byte
    /// identical across thread counts and telemetry on/off (it hashes
    /// only engine outputs), so harnesses can assert determinism with
    /// one string compare.
    pub result_digest: String,
}

impl ChaosMetrics {
    /// Fraction of epochs that produced an accepted sum.
    pub fn availability(&self) -> f64 {
        if self.epochs == 0 {
            1.0
        } else {
            self.ok_epochs as f64 / self.epochs as f64
        }
    }

    /// Fraction of actually-corrupted epochs the scheme rejected.
    pub fn detection_rate(&self) -> f64 {
        if self.corrupted_epochs == 0 {
            1.0
        } else {
            self.detected_corruptions as f64 / self.corrupted_epochs as f64
        }
    }

    /// (data + retransmit + control) / data — the bandwidth price of
    /// reliability.
    pub fn overhead_factor(&self) -> f64 {
        if self.data_bytes == 0 {
            1.0
        } else {
            (self.data_bytes + self.retransmit_bytes + self.control_bytes) as f64
                / self.data_bytes as f64
        }
    }

    /// True when no corrupted aggregate was accepted and no clean epoch
    /// was rejected — the property the reliability experiment asserts.
    pub fn sound(&self) -> bool {
        self.false_accepts == 0 && self.false_rejects == 0 && self.sum_mismatches == 0
    }
}

/// Runs `cfg.epochs` fault-injected epochs of `scheme` over `topology`
/// and classifies every outcome. Panics only if the engine itself
/// panics — which the run is designed to prove it never does.
pub fn run_chaos<S: AggregationScheme>(
    scheme: &S,
    topology: &Topology,
    cfg: &ChaosConfig,
) -> ChaosMetrics {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let radio = LossyRadio::new(cfg.loss_rate, cfg.max_retries);
    let mut engine = Engine::new(scheme, topology).with_threads(cfg.threads);
    let mut m = ChaosMetrics {
        seed: cfg.seed,
        ..ChaosMetrics::default()
    };

    // Non-root nodes are fair game for crashes and attacks; the sink
    // staying up keeps availability attributable to the protocol under
    // test (sink crash is covered by unit tests).
    let candidates: Vec<NodeId> = topology
        .nodes()
        .iter()
        .map(|n| n.id)
        .filter(|&id| id != topology.root())
        .collect();

    let num_sources = topology.num_sources() as usize;
    let mut digest = Sha256::new();
    for epoch in 0..cfg.epochs {
        let values: Vec<u64> = (0..num_sources)
            .map(|_| rng.random_range(0..=cfg.max_value))
            .collect();

        let mut crashed: HashSet<NodeId> = HashSet::new();
        if rng.random_range(0.0..1.0) < cfg.crash_prob {
            // 1–3 simultaneous crashes stress multi-orphan repair.
            let n = rng.random_range(1..=3usize);
            for _ in 0..n {
                crashed.insert(candidates[rng.random_range(0..candidates.len())]);
            }
            m.crash_epochs += 1;
            tel::count!("chaos.crashes_injected", crashed.len() as u64);
            tel::event(epoch, EventKind::CrashInjected, crashed.len() as u64, 0);
        }

        let mut attacks: Vec<Attack> = Vec::new();
        if rng.random_range(0.0..1.0) < cfg.attack_prob {
            let live: Vec<NodeId> = candidates
                .iter()
                .copied()
                .filter(|id| !crashed.contains(id))
                .collect();
            let attack = match rng.random_range(0..4u32) {
                0 => Attack::TamperAtNode(live[rng.random_range(0..live.len())]),
                1 => Attack::DropAtNode(live[rng.random_range(0..live.len())]),
                2 => Attack::DuplicateAtNode(live[rng.random_range(0..live.len())]),
                _ => Attack::ReplayFinal,
            };
            let (kind, target) = match attack {
                Attack::TamperAtNode(n) => (0u64, n as u64),
                Attack::DropAtNode(n) => (1, n as u64),
                Attack::DuplicateAtNode(n) => (2, n as u64),
                Attack::ReplayFinal => (3, 0),
            };
            tel::count!("chaos.attacks_injected");
            tel::event(epoch, EventKind::AttackInjected, kind, target);
            attacks.push(attack);
            m.attack_epochs += 1;
        }

        let run = engine.run_epoch_recovering(
            epoch,
            &values,
            &crashed,
            &attacks,
            &radio,
            &cfg.recovery,
            &mut rng,
        );

        if run.aggregate_corrupted {
            m.corrupted_epochs += 1;
        }

        // Fold this epoch's outcome into the run fingerprint: verdict
        // tag, sum bits (exact, via f64 bit pattern), corruption flag,
        // and the sorted contributor set.
        digest.update(&epoch.to_le_bytes());
        match &run.outcome.result {
            Ok(sum) => {
                digest.update(&[1, sum.integrity_checked as u8]);
                digest.update(&sum.sum.to_bits().to_le_bytes());
            }
            Err(SchemeError::VerificationFailed(_)) => digest.update(&[2]),
            Err(SchemeError::Malformed(_)) => digest.update(&[3]),
        }
        digest.update(&[run.aggregate_corrupted as u8]);
        digest.update(&(run.outcome.stats.contributors.len() as u64).to_le_bytes());
        for &sid in &run.outcome.stats.contributors {
            digest.update(&sid.to_le_bytes());
        }

        match &run.outcome.result {
            Ok(sum) => {
                m.ok_epochs += 1;
                if run.aggregate_corrupted {
                    m.false_accepts += 1;
                } else if sum.integrity_checked {
                    let expected: u64 = run
                        .outcome
                        .stats
                        .contributors
                        .iter()
                        .map(|&sid| values[sid as usize])
                        .sum();
                    if sum.sum != expected as f64 {
                        m.sum_mismatches += 1;
                    }
                }
            }
            Err(SchemeError::VerificationFailed(_)) => {
                if run.aggregate_corrupted {
                    m.detected_corruptions += 1;
                } else {
                    m.false_rejects += 1;
                }
            }
            Err(SchemeError::Malformed(_)) => m.unavailable_epochs += 1,
        }

        m.adoptions += run.report.adoptions;
        m.delivered_links += run.report.delivered_links;
        m.lost_links += run.report.lost_links;
        m.recovered_by_resolicit += run.report.recovered_by_resolicit;
        m.resolicitations += run.report.resolicitations;
        m.init_failures += run.report.init_failures;
        m.merge_failures += run.report.merge_failures;
        m.data_bytes += run.outcome.stats.bytes.data_total();
        m.retransmit_bytes += run.outcome.stats.bytes.retransmit;
        m.control_bytes += run.outcome.stats.bytes.control;
    }
    m.epochs = cfg.epochs;
    m.result_digest = digest
        .finalize()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::SiesDeployment;
    use sies_core::SystemParams;

    fn sies(n: u64) -> SiesDeployment {
        let mut rng = StdRng::seed_from_u64(7);
        SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap())
    }

    #[test]
    fn sies_chaos_run_is_sound() {
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let cfg = ChaosConfig {
            seed: 42,
            epochs: 300,
            ..ChaosConfig::default()
        };
        let m = run_chaos(&dep, &topo, &cfg);
        assert_eq!(m.epochs, 300);
        assert!(
            m.sound(),
            "false_accepts={} false_rejects={} mismatches={}",
            m.false_accepts,
            m.false_rejects,
            m.sum_mismatches
        );
        assert!(
            m.corrupted_epochs > 0,
            "chaos mix never corrupted an aggregate"
        );
        assert_eq!(m.detected_corruptions, m.corrupted_epochs);
        assert!(m.ok_epochs > 0);
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let dep = sies(8);
        let topo = Topology::complete_tree(8, 2);
        let cfg = ChaosConfig {
            seed: 9,
            epochs: 60,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&dep, &topo, &cfg);
        let b = run_chaos(&dep, &topo, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_metrics_are_thread_count_invariant() {
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let base_cfg = ChaosConfig {
            seed: 77,
            epochs: 50,
            ..ChaosConfig::default()
        };
        let base = run_chaos(&dep, &topo, &base_cfg);
        for threads in [2usize, 4, 8] {
            let cfg = ChaosConfig {
                threads: Threads::fixed(threads),
                ..base_cfg
            };
            assert_eq!(run_chaos(&dep, &topo, &cfg), base, "threads = {threads}");
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let dep = sies(8);
        let topo = Topology::complete_tree(8, 2);
        let a = run_chaos(
            &dep,
            &topo,
            &ChaosConfig {
                seed: 1,
                epochs: 50,
                ..Default::default()
            },
        );
        let b = run_chaos(
            &dep,
            &topo,
            &ChaosConfig {
                seed: 2,
                epochs: 50,
                ..Default::default()
            },
        );
        assert_ne!(a, b, "seeds 1 and 2 produced identical runs");
    }

    #[test]
    fn calm_run_has_full_availability() {
        let dep = sies(8);
        let topo = Topology::complete_tree(8, 2);
        let cfg = ChaosConfig {
            seed: 3,
            epochs: 40,
            loss_rate: 0.0,
            crash_prob: 0.0,
            attack_prob: 0.0,
            ..ChaosConfig::default()
        };
        let m = run_chaos(&dep, &topo, &cfg);
        assert_eq!(m.ok_epochs, 40);
        assert_eq!(m.availability(), 1.0);
        assert_eq!(
            m.overhead_factor(),
            (m.data_bytes + m.control_bytes) as f64 / m.data_bytes as f64
        );
        assert_eq!(m.retransmit_bytes, 0);
    }

    #[test]
    fn recovery_beats_no_recovery_at_heavy_loss() {
        // With zero re-solicitation rounds and no retries the same seed
        // loses strictly more links than the full protocol.
        let dep = sies(16);
        let topo = Topology::complete_tree(16, 4);
        let weak = ChaosConfig {
            seed: 11,
            epochs: 80,
            loss_rate: 0.4,
            max_retries: 0,
            crash_prob: 0.0,
            attack_prob: 0.0,
            recovery: RecoveryConfig::new(0, 0.5),
            ..ChaosConfig::default()
        };
        let strong = ChaosConfig {
            max_retries: 3,
            recovery: RecoveryConfig::new(2, 0.5),
            ..weak
        };
        let mw = run_chaos(&dep, &topo, &weak);
        let ms = run_chaos(&dep, &topo, &strong);
        assert!(
            ms.lost_links < mw.lost_links,
            "recovery {} lost vs bare {} lost",
            ms.lost_links,
            mw.lost_links
        );
        assert!(ms.sound() && mw.sound());
    }
}
