//! First-order radio energy model (Heinzelman et al.), quantifying the
//! paper's motivation: transmission dominates a sensor's battery budget,
//! so bytes-per-edge translate directly into network lifetime.
//!
//! `E_tx(k, d) = E_elec·k + ε_amp·k·d²` and `E_rx(k) = E_elec·k` for `k`
//! bits over distance `d` metres.

use sies_telemetry as tel;

/// Radio energy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Electronics energy per bit, joules (default 50 nJ/bit).
    pub e_elec: f64,
    /// Amplifier energy per bit per m², joules (default 100 pJ/bit/m²).
    pub e_amp: f64,
    /// Inter-node distance in metres (default 50 m).
    pub distance_m: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel {
            e_elec: 50e-9,
            e_amp: 100e-12,
            distance_m: 50.0,
        }
    }
}

impl RadioModel {
    /// `E_tx` for `bytes` without touching telemetry — shared by the
    /// per-transmission path and what-if analyses like
    /// [`lifetime_epochs`](Self::lifetime_epochs).
    fn tx_joules(&self, bytes: usize) -> f64 {
        let bits = (bytes * 8) as f64;
        self.e_elec * bits + self.e_amp * bits * self.distance_m * self.distance_m
    }

    /// Energy to transmit `bytes` over one hop, in joules. Counts the
    /// bytes as radio traffic — call it once per actual transmission.
    pub fn tx_energy(&self, bytes: usize) -> f64 {
        tel::count!("radio.tx_bytes", bytes as u64);
        self.tx_joules(bytes)
    }

    /// Energy to receive `bytes`, in joules. Counts the bytes as radio
    /// traffic — call it once per actual reception.
    pub fn rx_energy(&self, bytes: usize) -> f64 {
        tel::count!("radio.rx_bytes", bytes as u64);
        let bits = (bytes * 8) as f64;
        self.e_elec * bits
    }

    /// Epochs a node can sustain transmitting `bytes_per_epoch`, given a
    /// battery budget in joules (a coarse lifetime estimate that ignores
    /// sensing and CPU draw, which transmission dominates).
    pub fn lifetime_epochs(&self, battery_joules: f64, bytes_per_epoch: usize) -> f64 {
        if bytes_per_epoch == 0 {
            return f64::INFINITY;
        }
        battery_joules / self.tx_joules(bytes_per_epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_exceeds_rx() {
        let m = RadioModel::default();
        assert!(m.tx_energy(32) > m.rx_energy(32));
    }

    #[test]
    fn energy_scales_linearly_in_bytes() {
        let m = RadioModel::default();
        let one = m.tx_energy(1);
        let hundred = m.tx_energy(100);
        assert!((hundred / one - 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_grows_with_distance() {
        let near = RadioModel {
            distance_m: 10.0,
            ..Default::default()
        };
        let far = RadioModel {
            distance_m: 100.0,
            ..Default::default()
        };
        assert!(far.tx_energy(32) > near.tx_energy(32));
        assert_eq!(near.rx_energy(32), far.rx_energy(32));
    }

    #[test]
    fn sies_vs_secoa_lifetime_gap() {
        // 32-byte PSRs (SIES) vs ~38 KB payloads (SECOA): the lifetime gap
        // should be about 3 orders of magnitude (Table V).
        let m = RadioModel::default();
        let battery = 2.0; // joules
        let sies = m.lifetime_epochs(battery, 32);
        let secoa = m.lifetime_epochs(battery, 38_720);
        assert!(sies / secoa > 1000.0);
    }

    #[test]
    fn zero_bytes_is_free() {
        let m = RadioModel::default();
        assert_eq!(m.tx_energy(0), 0.0);
        assert!(m.lifetime_epochs(1.0, 0).is_infinite());
    }
}
