//! Precompute-ahead pools for epoch crypto.
//!
//! An epoch's expensive setup — the PRF sweeps deriving `K_t`, every
//! source's `k_{i,t}` and `ss_{i,t}` — depends only on the epoch number
//! and long-term keys, so it can run during the inter-epoch idle gap
//! instead of on the epoch's critical path. This module supplies the
//! policy and the pool; [`crate::deploy::SiesDeployment`] provides the
//! derivation and consumption, and [`crate::pipeline::EpochPipeline`]
//! paces a background warmer thread.
//!
//! The split is deliberate: [`PrewarmPolicy`] is pure arithmetic (what
//! to derive next, what to evict) and [`PrewarmPool`] is a plain keyed
//! store with counters, so both are unit-testable without a deployment
//! or an engine. Neither ever *changes* a result — a pool hit returns
//! exactly the bytes on-demand derivation would produce (the scheme
//! asserts this), so digests are identical regardless of pool state.

use sies_core::Epoch;
use sies_telemetry as tel;
use std::collections::BTreeMap;

/// When and how far ahead to precompute. Pure decision logic: given the
/// engine's progress watermark, [`PrewarmPolicy::plan`] says which
/// epochs a warmer should derive next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrewarmPolicy {
    /// Master switch. A disabled policy plans nothing and the pool
    /// never hits, so every epoch takes the on-demand path.
    pub enabled: bool,
    /// How many epochs past the watermark to keep derived (the
    /// look-ahead horizon).
    pub depth: u64,
    /// Maximum entries retained; inserting beyond this evicts the
    /// oldest epoch first.
    pub capacity: usize,
}

impl Default for PrewarmPolicy {
    fn default() -> Self {
        PrewarmPolicy {
            enabled: true,
            depth: 2,
            capacity: 4,
        }
    }
}

impl PrewarmPolicy {
    /// A policy that never precomputes (the pool becomes inert).
    pub fn disabled() -> Self {
        PrewarmPolicy {
            enabled: false,
            depth: 0,
            capacity: 0,
        }
    }

    /// The epochs worth deriving once the engine has finished
    /// `watermark`: `watermark + 1 ..= watermark + depth`, minus those
    /// `have` already covers, oldest first (the next epoch to run is
    /// the most urgent). Pure — callers pass a membership probe.
    pub fn plan(&self, watermark: Epoch, have: impl Fn(Epoch) -> bool) -> Vec<Epoch> {
        if !self.enabled || self.depth == 0 {
            return Vec::new();
        }
        (1..=self.depth)
            .filter_map(|d| watermark.checked_add(d))
            .filter(|&e| !have(e))
            .collect()
    }

    /// Whether a pooled epoch is stale once the engine has finished
    /// `watermark` (its keys can no longer be consumed).
    pub fn is_stale(&self, epoch: Epoch, watermark: Epoch) -> bool {
        epoch <= watermark
    }
}

/// Lifetime counters for one pool. `hits`/`misses` only count lookups
/// while the policy is enabled, so a disabled pool reports all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrewarmStats {
    /// Lookups served from the pool.
    pub hits: u64,
    /// Enabled lookups that fell through to on-demand derivation.
    pub misses: u64,
    /// Entries inserted (successful derivations).
    pub derived: u64,
    /// Entries dropped for capacity or staleness.
    pub evicted: u64,
    /// Entries dropped by [`PrewarmPool::cancel_all`] (e.g. a topology
    /// repair invalidating in-flight precomputation).
    pub cancelled: u64,
}

/// An epoch-keyed store of precomputed values with hit/miss accounting.
/// Generic over the payload so the policy mechanics are testable with
/// plain integers; the deployment instantiates it with an
/// `Arc<EpochKeyMaterial>` so lookups stay non-destructive and cheap.
#[derive(Debug)]
pub struct PrewarmPool<T> {
    policy: PrewarmPolicy,
    entries: BTreeMap<Epoch, T>,
    stats: PrewarmStats,
}

impl<T> PrewarmPool<T> {
    /// An empty pool under `policy`.
    pub fn new(policy: PrewarmPolicy) -> Self {
        PrewarmPool {
            policy,
            entries: BTreeMap::new(),
            stats: PrewarmStats::default(),
        }
    }

    /// The governing policy.
    pub fn policy(&self) -> &PrewarmPolicy {
        &self.policy
    }

    /// Replaces the policy. Disabling clears the pool (counted as
    /// cancelled) so stale entries cannot linger invisibly.
    pub fn set_policy(&mut self, policy: PrewarmPolicy) {
        self.policy = policy;
        if !policy.enabled {
            self.cancel_all();
        }
    }

    /// The epochs a warmer should derive next, given the engine's
    /// watermark (see [`PrewarmPolicy::plan`]).
    pub fn plan(&self, watermark: Epoch) -> Vec<Epoch> {
        self.policy
            .plan(watermark, |e| self.entries.contains_key(&e))
    }

    /// Whether `epoch` is already pooled.
    pub fn contains(&self, epoch: Epoch) -> bool {
        self.entries.contains_key(&epoch)
    }

    /// Inserts freshly derived material for `epoch`. Returns `false`
    /// (dropping the value) when the policy is disabled or the epoch is
    /// already present — two warmers racing on the same epoch keep the
    /// first result. Evicts oldest-first beyond capacity.
    pub fn insert(&mut self, epoch: Epoch, value: T) -> bool {
        if !self.policy.enabled || self.entries.contains_key(&epoch) {
            return false;
        }
        self.entries.insert(epoch, value);
        self.stats.derived += 1;
        tel::count!("net.prewarm.derived");
        while self.entries.len() > self.policy.capacity.max(1) {
            self.entries.pop_first();
            self.stats.evicted += 1;
            tel::count!("net.prewarm.evicted");
        }
        true
    }

    /// Non-destructive lookup: the entry stays pooled, so concurrent
    /// shard workers of one epoch all hit. Counts a hit or miss only
    /// while enabled — a disabled pool is invisible in the stats.
    pub fn lookup(&mut self, epoch: Epoch) -> Option<&T> {
        if !self.policy.enabled {
            return None;
        }
        // Denominator for the `prewarm_miss_rate` alert rule (hits and
        // misses alone can't give the engine a stable rate window).
        tel::count!("net.prewarm.lookups");
        match self.entries.get(&epoch) {
            Some(v) => {
                self.stats.hits += 1;
                tel::count!("net.prewarm.hits");
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                tel::count!("net.prewarm.misses");
                None
            }
        }
    }

    /// Drops entries the watermark has passed
    /// ([`PrewarmPolicy::is_stale`]), counting them as evicted.
    pub fn retire(&mut self, watermark: Epoch) {
        let policy = self.policy;
        let before = self.entries.len();
        self.entries.retain(|&e, _| !policy.is_stale(e, watermark));
        let dropped = (before - self.entries.len()) as u64;
        self.stats.evicted += dropped;
        tel::count!("net.prewarm.evicted", dropped);
    }

    /// Empties the pool (topology repair, shutdown), counting the
    /// dropped entries as cancelled. Already-derived keys may no longer
    /// match the upcoming epoch's contributor set, and correctness never
    /// depends on pool contents, so wholesale invalidation is always
    /// safe.
    pub fn cancel_all(&mut self) {
        let dropped = self.entries.len() as u64;
        self.entries.clear();
        self.stats.cancelled += dropped;
        tel::count!("net.prewarm.cancelled", dropped);
    }

    /// Entries currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> PrewarmStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_skips_pooled() {
        let policy = PrewarmPolicy {
            enabled: true,
            depth: 3,
            capacity: 8,
        };
        assert_eq!(policy.plan(10, |_| false), vec![11, 12, 13]);
        assert_eq!(policy.plan(10, |e| e == 12), vec![11, 13]);
        assert_eq!(policy.plan(10, |_| true), Vec::<Epoch>::new());
        // Near the epoch-counter ceiling the plan clips, not wraps.
        assert_eq!(policy.plan(u64::MAX - 1, |_| false), vec![u64::MAX]);
        assert!(PrewarmPolicy::disabled().plan(10, |_| false).is_empty());
    }

    #[test]
    fn pool_hits_and_misses_are_counted() {
        let mut pool: PrewarmPool<&str> = PrewarmPool::new(PrewarmPolicy::default());
        assert!(pool.lookup(5).is_none());
        assert!(pool.insert(5, "keys-5"));
        assert_eq!(pool.lookup(5), Some(&"keys-5"));
        // Non-destructive: a second lookup still hits.
        assert_eq!(pool.lookup(5), Some(&"keys-5"));
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.derived), (2, 1, 1));
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let mut pool: PrewarmPool<&str> = PrewarmPool::new(PrewarmPolicy::default());
        assert!(pool.insert(7, "first"));
        assert!(!pool.insert(7, "second"));
        assert_eq!(pool.lookup(7), Some(&"first"));
        assert_eq!(pool.stats().derived, 1);
    }

    #[test]
    fn capacity_exhaustion_evicts_oldest() {
        let mut pool: PrewarmPool<u32> = PrewarmPool::new(PrewarmPolicy {
            enabled: true,
            depth: 8,
            capacity: 2,
        });
        for e in 1..=4 {
            pool.insert(e, e as u32 * 100);
        }
        assert_eq!(pool.len(), 2);
        assert!(pool.lookup(1).is_none(), "oldest evicted");
        assert!(pool.lookup(2).is_none());
        assert_eq!(pool.lookup(3), Some(&300));
        assert_eq!(pool.lookup(4), Some(&400));
        assert_eq!(pool.stats().evicted, 2);
    }

    #[test]
    fn retire_drops_stale_epochs() {
        let mut pool: PrewarmPool<u32> = PrewarmPool::new(PrewarmPolicy {
            enabled: true,
            depth: 4,
            capacity: 8,
        });
        for e in 1..=4 {
            pool.insert(e, 0);
        }
        pool.retire(2);
        assert_eq!(pool.len(), 2);
        assert!(!pool.contains(1));
        assert!(!pool.contains(2));
        assert!(pool.contains(3));
        assert_eq!(pool.stats().evicted, 2);
        // The plan refills exactly the retired horizon.
        assert_eq!(pool.plan(2), vec![5, 6]);
    }

    #[test]
    fn cancellation_empties_pool_and_counts() {
        let mut pool: PrewarmPool<u32> = PrewarmPool::new(PrewarmPolicy::default());
        pool.insert(1, 0);
        pool.insert(2, 0);
        pool.cancel_all();
        assert!(pool.is_empty());
        assert_eq!(pool.stats().cancelled, 2);
        // Cancellation is not a disable: the pool keeps working.
        assert!(pool.insert(3, 0));
        assert_eq!(pool.lookup(3), Some(&0));
    }

    #[test]
    fn disabled_pool_is_inert() {
        let mut pool: PrewarmPool<u32> = PrewarmPool::new(PrewarmPolicy::disabled());
        assert!(!pool.insert(1, 0));
        assert!(pool.lookup(1).is_none());
        assert!(pool.plan(0).is_empty());
        assert_eq!(pool.stats(), PrewarmStats::default());
        // Disabling a live pool cancels its entries.
        let mut live: PrewarmPool<u32> = PrewarmPool::new(PrewarmPolicy::default());
        live.insert(4, 0);
        live.set_policy(PrewarmPolicy::disabled());
        assert!(live.is_empty());
        assert_eq!(live.stats().cancelled, 1);
        assert!(live.lookup(4).is_none());
        assert_eq!(live.stats().misses, 0, "disabled misses are not counted");
    }
}
