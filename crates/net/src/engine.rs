//! The epoch-driven aggregation engine: plays every role in-process,
//! walking the tree bottom-up each epoch, with timing, byte, and energy
//! accounting plus failure and attack injection.

use crate::energy::RadioModel;
use crate::flat::FlatTopology;
use crate::journal::ReceiptJournal;
use crate::radio::LossyRadio;
use crate::recovery::{
    RecoveryConfig, RecoveryReport, UplinkTally, ACK_BYTES, FAILURE_REPORT_BYTES, NACK_BYTES,
    REATTACH_BYTES, RESOLICIT_BYTES,
};
use crate::scheme::{AggregationScheme, EvaluatedSum, SchemeError};
use crate::topology::{NodeId, RepairPlan, Topology};
use rand::RngCore;
use serde::{Content, Serialize};
use sies_core::{parallel, Epoch, SourceId, Threads};
use sies_receipts::{EpochReceipt, Verdict as ReceiptVerdict};
use sies_telemetry as tel;
use sies_telemetry::{Counter, EventKind, FloatCounter, Registry, Snapshot};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An adversarial action injected into one epoch. All attacks are *covert*:
/// contributor reporting is unchanged, so an honest querier cannot tell a
/// priori that anything happened — detection must come from the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Modify the PSR leaving `node` (scheme-specific tamper).
    TamperAtNode(NodeId),
    /// Silently discard the PSR leaving `node`.
    DropAtNode(NodeId),
    /// Deliver the PSR leaving `node` twice to its parent.
    DuplicateAtNode(NodeId),
    /// Replace the final PSR with the previous epoch's final PSR (replay).
    ReplayFinal,
}

/// Per-edge-class byte totals for one epoch (paper Table V's three rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeBytes {
    /// Total bytes on source→aggregator edges.
    pub source_to_agg: u64,
    /// Number of source→aggregator transmissions.
    pub source_to_agg_edges: u64,
    /// Total bytes on aggregator→aggregator edges.
    pub agg_to_agg: u64,
    /// Number of aggregator→aggregator transmissions.
    pub agg_to_agg_edges: u64,
    /// Bytes on the single aggregator→querier edge.
    pub agg_to_querier: u64,
    /// Extra data bytes spent on retransmissions (recovery protocol).
    /// The three per-class totals above count first copies only, so they
    /// stay comparable to the paper's Table V.
    pub retransmit: u64,
    /// Control-plane bytes: ACK/NACK, re-solicitation, re-attach
    /// handshakes, and failure reports (recovery protocol).
    pub control: u64,
}

impl Serialize for EdgeBytes {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("source_to_agg".into(), Content::U64(self.source_to_agg)),
            (
                "source_to_agg_edges".into(),
                Content::U64(self.source_to_agg_edges),
            ),
            ("agg_to_agg".into(), Content::U64(self.agg_to_agg)),
            (
                "agg_to_agg_edges".into(),
                Content::U64(self.agg_to_agg_edges),
            ),
            ("agg_to_querier".into(), Content::U64(self.agg_to_querier)),
            ("retransmit".into(), Content::U64(self.retransmit)),
            ("control".into(), Content::U64(self.control)),
            (
                "overhead_factor".into(),
                Content::F64(self.overhead_factor()),
            ),
        ])
    }
}

impl EdgeBytes {
    /// Mean bytes per source→aggregator edge.
    pub fn per_sa_edge(&self) -> f64 {
        if self.source_to_agg_edges == 0 {
            0.0
        } else {
            self.source_to_agg as f64 / self.source_to_agg_edges as f64
        }
    }

    /// Mean bytes per aggregator→aggregator edge.
    pub fn per_aa_edge(&self) -> f64 {
        if self.agg_to_agg_edges == 0 {
            0.0
        } else {
            self.agg_to_agg as f64 / self.agg_to_agg_edges as f64
        }
    }

    /// First-copy data bytes across all edge classes.
    pub fn data_total(&self) -> u64 {
        self.source_to_agg + self.agg_to_agg + self.agg_to_querier
    }

    /// Overhead factor: (data + retransmissions + control) / data.
    /// `1.0` means the recovery protocol cost nothing this epoch.
    pub fn overhead_factor(&self) -> f64 {
        let data = self.data_total();
        if data == 0 {
            1.0
        } else {
            (data + self.retransmit + self.control) as f64 / data as f64
        }
    }
}

/// Measurements collected over one epoch.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// The epoch.
    pub epoch: Epoch,
    /// Total CPU time spent in source initialization.
    pub source_cpu: Duration,
    /// Number of sources that ran initialization.
    pub sources_run: u64,
    /// Total CPU time spent merging at aggregators.
    pub aggregator_cpu: Duration,
    /// Number of aggregators that merged at least one PSR.
    pub aggregators_run: u64,
    /// CPU time of the querier's evaluation phase.
    pub querier_cpu: Duration,
    /// Byte totals per edge class.
    pub bytes: EdgeBytes,
    /// Total radio transmit energy across the network (joules).
    pub energy_tx: f64,
    /// Total radio receive energy across the network (joules).
    pub energy_rx: f64,
    /// Sources reported as contributing (honest failures excluded).
    pub contributors: Vec<SourceId>,
}

impl EpochStats {
    /// Mean initialization time per source.
    pub fn per_source_cpu(&self) -> Duration {
        if self.sources_run == 0 {
            Duration::ZERO
        } else {
            self.source_cpu / self.sources_run as u32
        }
    }

    /// Mean merge time per aggregator.
    pub fn per_aggregator_cpu(&self) -> Duration {
        if self.aggregators_run == 0 {
            Duration::ZERO
        } else {
            self.aggregator_cpu / self.aggregators_run as u32
        }
    }

    /// Rebuilds epoch stats from a telemetry snapshot diff (the metrics
    /// recorded between [`EpochMeter::begin`] and now). This is *the*
    /// constructor the engine uses: the accounting lives in named
    /// counters, and this struct is a typed view over their deltas.
    pub fn from_diff(epoch: Epoch, contributors: Vec<SourceId>, d: &Snapshot) -> Self {
        EpochStats {
            epoch,
            source_cpu: Duration::from_nanos(d.counter(metric::SOURCE_CPU_NS)),
            sources_run: d.counter(metric::SOURCES_RUN),
            aggregator_cpu: Duration::from_nanos(d.counter(metric::AGGREGATOR_CPU_NS)),
            aggregators_run: d.counter(metric::AGGREGATORS_RUN),
            querier_cpu: Duration::from_nanos(d.counter(metric::QUERIER_CPU_NS)),
            bytes: EdgeBytes {
                source_to_agg: d.counter(metric::SA_BYTES),
                source_to_agg_edges: d.counter(metric::SA_EDGES),
                agg_to_agg: d.counter(metric::AA_BYTES),
                agg_to_agg_edges: d.counter(metric::AA_EDGES),
                agg_to_querier: d.counter(metric::AQ_BYTES),
                retransmit: d.counter(metric::RETRANSMIT_BYTES),
                control: d.counter(metric::CONTROL_BYTES),
            },
            energy_tx: d.float(metric::ENERGY_TX_J),
            energy_rx: d.float(metric::ENERGY_RX_J),
            contributors,
        }
    }
}

// Serializes only the seed-deterministic fields: `sim --json` promises
// byte-identical output for the same seed at every thread count, so the
// wall-clock CPU durations stay out of the JSON (they're still available
// through the accessors, telemetry spans, and the BENCH_* artifacts,
// none of which claim byte identity).
impl Serialize for EpochStats {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("epoch".into(), Content::U64(self.epoch)),
            ("sources_run".into(), Content::U64(self.sources_run)),
            ("aggregators_run".into(), Content::U64(self.aggregators_run)),
            ("bytes".into(), self.bytes.to_content()),
            ("energy_tx_j".into(), Content::F64(self.energy_tx)),
            ("energy_rx_j".into(), Content::F64(self.energy_rx)),
            (
                "contributors".into(),
                Content::Seq(
                    self.contributors
                        .iter()
                        .map(|&s| Content::U64(s as u64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Canonical metric names the engine records under — shared by the
/// epoch meter, [`EpochStats::from_diff`], and the harnesses that read
/// global snapshots.
pub mod metric {
    /// Summed in-worker source-init CPU (ns).
    pub const SOURCE_CPU_NS: &str = "engine.source_cpu_ns";
    /// Sources that ran initialization.
    pub const SOURCES_RUN: &str = "engine.sources_run";
    /// Aggregator merge + sink-finalize CPU (ns).
    pub const AGGREGATOR_CPU_NS: &str = "engine.aggregator_cpu_ns";
    /// Aggregators that merged at least one PSR.
    pub const AGGREGATORS_RUN: &str = "engine.aggregators_run";
    /// Querier evaluation CPU (ns).
    pub const QUERIER_CPU_NS: &str = "engine.querier_cpu_ns";
    /// First-copy bytes on source→aggregator edges.
    pub const SA_BYTES: &str = "net.bytes.source_to_agg";
    /// Source→aggregator transmissions.
    pub const SA_EDGES: &str = "net.edges.source_to_agg";
    /// First-copy bytes on aggregator→aggregator edges.
    pub const AA_BYTES: &str = "net.bytes.agg_to_agg";
    /// Aggregator→aggregator transmissions.
    pub const AA_EDGES: &str = "net.edges.agg_to_agg";
    /// Bytes on the sink→querier edge.
    pub const AQ_BYTES: &str = "net.bytes.agg_to_querier";
    /// Extra data bytes spent on retransmissions.
    pub const RETRANSMIT_BYTES: &str = "net.bytes.retransmit";
    /// Control-plane bytes (ACK/NACK, re-solicitation, re-attach,
    /// failure reports).
    pub const CONTROL_BYTES: &str = "net.bytes.control";
    /// Radio transmit energy (joules).
    pub const ENERGY_TX_J: &str = "energy.tx_joules";
    /// Radio receive energy (joules).
    pub const ENERGY_RX_J: &str = "energy.rx_joules";
    /// Epochs the querier accepted.
    pub const EPOCHS_ACCEPTED: &str = "engine.epochs_accepted";
    /// Epochs the querier rejected (integrity failure).
    pub const EPOCHS_REJECTED: &str = "engine.epochs_rejected";
    /// Epochs with no result (availability loss / malformed input).
    pub const EPOCHS_LOST: &str = "engine.epochs_lost";
    /// Wall-clock histogram (ns) of whole epochs — fed by the
    /// `engine.epoch` root span, so it is also the profiler's outermost
    /// frame. The `epoch_latency_p99` alert rule reads its quantiles.
    pub const EPOCH_SPAN: &str = "engine.epoch";
    /// Orphans adopted by backup parents during in-epoch repair (the
    /// detection-side crash signal the `crash_churn` alert rule reads).
    pub const ADOPTIONS: &str = "engine.adoptions";
    /// Child-failure reports escalated to the querier.
    pub const FAILURE_REPORTS: &str = "engine.failure_reports";

    /// Registers `# HELP` text for the engine's key exported metrics
    /// (surfaces on the `/metrics` endpoint). Idempotent.
    pub fn describe_all() {
        use sies_telemetry::describe;
        describe(EPOCHS_ACCEPTED, "Epochs the querier accepted");
        describe(
            EPOCHS_REJECTED,
            "Epochs the querier rejected (integrity failure)",
        );
        describe(EPOCHS_LOST, "Epochs with no verifiable result");
        describe(EPOCH_SPAN, "Wall-clock epoch latency in nanoseconds");
        describe(
            ADOPTIONS,
            "Orphans adopted by backup parents during in-epoch repair",
        );
        describe(
            FAILURE_REPORTS,
            "Child-failure reports escalated to the querier",
        );
        describe(
            RETRANSMIT_BYTES,
            "Extra data bytes spent on retransmissions",
        );
        describe(
            CONTROL_BYTES,
            "Control-plane bytes (ACK/NACK, re-solicit, re-attach)",
        );
    }
}

/// The engine's private always-on metric registry plus cached handles
/// for every hot-path counter.
///
/// `EpochStats` is **derived** from this meter: the epoch's activity is
/// the diff between the registry snapshot at epoch start and at each
/// exit point. The meter is private to the engine (not the global
/// registry), so per-epoch stats stay exact even when the global
/// telemetry kill-switch is off; when the switch is on, each epoch's
/// diff is absorbed into the global registry under the same names.
struct EpochMeter {
    reg: Registry,
    source_cpu_ns: Arc<Counter>,
    sources_run: Arc<Counter>,
    aggregator_cpu_ns: Arc<Counter>,
    aggregators_run: Arc<Counter>,
    querier_cpu_ns: Arc<Counter>,
    sa_bytes: Arc<Counter>,
    sa_edges: Arc<Counter>,
    aa_bytes: Arc<Counter>,
    aa_edges: Arc<Counter>,
    aq_bytes: Arc<Counter>,
    retransmit_bytes: Arc<Counter>,
    control_bytes: Arc<Counter>,
    energy_tx: Arc<FloatCounter>,
    energy_rx: Arc<FloatCounter>,
    mirror: GlobalMirror,
}

/// Cached handles into the *global* registry for every meter metric.
///
/// Absorbing an epoch's diff through these is a handful of atomic adds;
/// [`Registry::absorb`] would instead re-intern every metric name and
/// walk the registry map under its mutex once per metric per epoch.
struct GlobalMirror {
    counters: [(&'static str, Arc<Counter>); 12],
    floats: [(&'static str, Arc<FloatCounter>); 2],
}

impl GlobalMirror {
    fn new() -> Self {
        let g = tel::global();
        let c = |n: &'static str| (n, g.counter(n));
        GlobalMirror {
            counters: [
                c(metric::SOURCE_CPU_NS),
                c(metric::SOURCES_RUN),
                c(metric::AGGREGATOR_CPU_NS),
                c(metric::AGGREGATORS_RUN),
                c(metric::QUERIER_CPU_NS),
                c(metric::SA_BYTES),
                c(metric::SA_EDGES),
                c(metric::AA_BYTES),
                c(metric::AA_EDGES),
                c(metric::AQ_BYTES),
                c(metric::RETRANSMIT_BYTES),
                c(metric::CONTROL_BYTES),
            ],
            floats: [
                (metric::ENERGY_TX_J, g.float(metric::ENERGY_TX_J)),
                (metric::ENERGY_RX_J, g.float(metric::ENERGY_RX_J)),
            ],
        }
    }

    fn absorb(&self, d: &Snapshot) {
        for (name, h) in &self.counters {
            let v = d.counter(name);
            if v > 0 {
                h.add(v);
            }
        }
        for (name, h) in &self.floats {
            let v = d.float(name);
            if v != 0.0 {
                h.add(v);
            }
        }
    }
}

impl EpochMeter {
    fn new() -> Self {
        let reg = Registry::new();
        EpochMeter {
            source_cpu_ns: reg.counter(metric::SOURCE_CPU_NS),
            sources_run: reg.counter(metric::SOURCES_RUN),
            aggregator_cpu_ns: reg.counter(metric::AGGREGATOR_CPU_NS),
            aggregators_run: reg.counter(metric::AGGREGATORS_RUN),
            querier_cpu_ns: reg.counter(metric::QUERIER_CPU_NS),
            sa_bytes: reg.counter(metric::SA_BYTES),
            sa_edges: reg.counter(metric::SA_EDGES),
            aa_bytes: reg.counter(metric::AA_BYTES),
            aa_edges: reg.counter(metric::AA_EDGES),
            aq_bytes: reg.counter(metric::AQ_BYTES),
            retransmit_bytes: reg.counter(metric::RETRANSMIT_BYTES),
            control_bytes: reg.counter(metric::CONTROL_BYTES),
            energy_tx: reg.float(metric::ENERGY_TX_J),
            energy_rx: reg.float(metric::ENERGY_RX_J),
            mirror: GlobalMirror::new(),
            reg,
        }
    }

    /// Marks an epoch boundary: everything recorded after this snapshot
    /// belongs to the new epoch.
    fn begin(&self) -> Snapshot {
        self.reg.snapshot()
    }

    /// Derives the epoch's stats from the diff against `t0`, absorbing
    /// the diff into the global registry when telemetry is enabled.
    fn finish(&self, epoch: Epoch, contributors: Vec<SourceId>, t0: &Snapshot) -> EpochStats {
        let d = self.reg.snapshot().diff(t0);
        if tel::enabled() {
            self.mirror.absorb(&d);
        }
        EpochStats::from_diff(epoch, contributors, &d)
    }
}

/// Saturating nanosecond conversion for counter arithmetic.
#[inline]
fn ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// Journals the epoch's verdict event and bumps the matching global
/// verdict counter.
fn verdict_event(epoch: Epoch, kind: EventKind, a: u64) {
    tel::event(epoch, kind, a, 0);
    match kind {
        EventKind::EpochAccepted => tel::count!("engine.epochs_accepted"),
        EventKind::EpochRejected => tel::count!("engine.epochs_rejected"),
        EventKind::EpochLost => tel::count!("engine.epochs_lost"),
        _ => {}
    }
}

/// The outcome of one epoch: the querier's verdict plus measurements.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The evaluation result (an integrity error is an *outcome*, not an
    /// engine failure).
    pub result: Result<EvaluatedSum, SchemeError>,
    /// Measurements.
    pub stats: EpochStats,
}

/// Builds the durable-journal receipt skeleton for one epoch outcome:
/// verdict, exact sum bits, contributor set, byte totals, and the
/// ground-truth sum check (an accepted, verified sum is compared against
/// the plain sum of `values` over the reported contributors). The
/// session id and μTesla stamp are filled in by
/// [`crate::journal::ReceiptJournal::record`]; recovery counters by the
/// caller that has a [`RecoveryReport`].
fn receipt_base(
    epoch: Epoch,
    result: &Result<EvaluatedSum, SchemeError>,
    stats: &EpochStats,
    values: &[u64],
    corrupted: bool,
) -> EpochReceipt {
    let (verdict, integrity_checked, sum_bits, sum_mismatch) = match result {
        Ok(sum) => {
            let mismatch = !corrupted && sum.integrity_checked && {
                let expected: u64 = stats
                    .contributors
                    .iter()
                    .map(|&sid| values[sid as usize])
                    .sum();
                sum.sum != expected as f64
            };
            (
                ReceiptVerdict::Accepted,
                sum.integrity_checked,
                sum.sum.to_bits(),
                mismatch,
            )
        }
        Err(SchemeError::VerificationFailed(_)) => (ReceiptVerdict::Rejected, false, 0, false),
        Err(SchemeError::Malformed(_)) => (ReceiptVerdict::Lost, false, 0, false),
    };
    EpochReceipt {
        epoch,
        verdict,
        integrity_checked,
        corrupted,
        sum_mismatch,
        sum_bits,
        data_bytes: stats.bytes.data_total(),
        retransmit_bytes: stats.bytes.retransmit,
        control_bytes: stats.bytes.control,
        contributors: stats.contributors.clone(),
        ..EpochReceipt::default()
    }
}

/// The outcome of one epoch run under the recovery protocol
/// ([`Engine::run_epoch_recovering`]).
#[derive(Debug, Clone)]
pub struct RecoveredEpoch {
    /// The querier's verdict plus the usual measurements.
    pub outcome: EpochOutcome,
    /// Recovery-protocol accounting (retransmissions, control traffic,
    /// lost subtrees).
    pub report: RecoveryReport,
    /// The topology repairs performed for crashed nodes.
    pub repairs: RepairPlan,
    /// Ground truth for harnesses: whether a covert attack actually
    /// corrupted the aggregate that reached the querier (an attack whose
    /// subtree was honestly lost anyway has no effect). A verifying
    /// scheme must reject exactly when this is true.
    pub aggregate_corrupted: bool,
}

impl RecoveredEpoch {
    /// Builds this epoch's durable-journal receipt: the verdict, exact
    /// sum bits, ground-truth corruption and sum-mismatch checks, the
    /// contributor set, and every recovery-protocol counter. The harness
    /// supplies its injection flags; the journal stamps session id and
    /// μTesla position when the receipt is recorded.
    pub fn receipt(
        &self,
        epoch: Epoch,
        values: &[u64],
        crash_injected: bool,
        attack_injected: bool,
    ) -> EpochReceipt {
        let mut r = receipt_base(
            epoch,
            &self.outcome.result,
            &self.outcome.stats,
            values,
            self.aggregate_corrupted,
        );
        r.crash_injected = crash_injected;
        r.attack_injected = attack_injected;
        r.delivered_links = self.report.delivered_links;
        r.lost_links = self.report.lost_links;
        r.recovered_by_resolicit = self.report.recovered_by_resolicit;
        r.resolicitations = self.report.resolicitations;
        r.adoptions = self.report.adoptions;
        r.init_failures = self.report.init_failures;
        r.merge_failures = self.report.merge_failures;
        r.backoff_ms = self.report.backoff_ms;
        r
    }
}

/// Reusable per-epoch working buffers. Every epoch clears them (capacity
/// retained) instead of reallocating, so after the first epoch on a given
/// topology the engine's own bookkeeping is allocation-free: repeated
/// epochs only allocate inside the scheme's crypto.
struct EpochScratch<P> {
    /// `(source, value)` jobs in walk order.
    jobs: Vec<(SourceId, u64)>,
    /// The tree node each job belongs to, aligned with `jobs`.
    job_nodes: Vec<NodeId>,
    /// Per-node precomputed source-phase results.
    precomputed: Vec<Option<Result<P, SchemeError>>>,
    /// Per-node outgoing PSR queues (the duplicate attack deposits two).
    outputs: Vec<Vec<P>>,
    /// Gathered child PSRs for the aggregator currently merging —
    /// reused so the merge loop does not allocate once warmed up.
    merge_inputs: Vec<P>,
}

impl<P> EpochScratch<P> {
    fn new() -> Self {
        EpochScratch {
            jobs: Vec::new(),
            job_nodes: Vec::new(),
            precomputed: Vec::new(),
            outputs: Vec::new(),
            merge_inputs: Vec::new(),
        }
    }

    /// Clears all buffers and sizes the per-node ones for `n_nodes`.
    fn reset(&mut self, n_nodes: usize) {
        self.jobs.clear();
        self.job_nodes.clear();
        self.precomputed.clear();
        self.precomputed.resize_with(n_nodes, || None);
        for queue in &mut self.outputs {
            queue.clear();
        }
        self.outputs.resize_with(n_nodes, Vec::new);
        self.outputs.truncate(n_nodes);
        self.merge_inputs.clear();
    }
}

/// The simulation engine for one deployed scheme on one topology.
pub struct Engine<'a, S: AggregationScheme> {
    scheme: &'a S,
    topology: &'a Topology,
    /// Struct-of-arrays view of `topology`, built once: the per-epoch
    /// walks read its cached post-order and dense child ranges instead
    /// of re-deriving them from the pointer-based node list.
    flat: FlatTopology,
    radio: RadioModel,
    /// Worker count for the sharded source phase (1 = fully serial).
    threads: usize,
    /// Cached final PSR of the previous epoch, for replay attacks.
    prev_final: Option<S::Psr>,
    /// Per-epoch buffers, reused across epochs.
    scratch: EpochScratch<S::Psr>,
    /// Always-on private metric registry; `EpochStats` is a snapshot
    /// diff over it.
    meter: EpochMeter,
    /// Reusable journal-event buffer for the per-uplink hot loop.
    evbuf: tel::EventBuf,
    /// Durable receipt journal: when attached, every epoch run through
    /// [`run_epoch_with`](Self::run_epoch_with) commits a signed receipt.
    journal: Option<ReceiptJournal>,
}

impl<'a, S: AggregationScheme> Engine<'a, S> {
    /// Creates an engine with the default radio model, running serially.
    pub fn new(scheme: &'a S, topology: &'a Topology) -> Self {
        Engine {
            scheme,
            topology,
            flat: FlatTopology::from_topology(topology),
            radio: RadioModel::default(),
            threads: 1,
            prev_final: None,
            scratch: EpochScratch::new(),
            meter: EpochMeter::new(),
            evbuf: tel::EventBuf::new(),
            journal: None,
        }
    }

    /// Attaches a durable receipt journal: every subsequent
    /// [`run_epoch`](Self::run_epoch) / [`run_epoch_with`](Self::run_epoch_with)
    /// commits one signed receipt per epoch. Harness-driven flows
    /// ([`run_epoch_recovering`](Self::run_epoch_recovering)) journal
    /// explicitly via [`RecoveredEpoch::receipt`] instead, because only
    /// the harness knows its injection flags.
    pub fn attach_journal(&mut self, journal: ReceiptJournal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&ReceiptJournal> {
        self.journal.as_ref()
    }

    /// Detaches and returns the journal (callers should
    /// [`ReceiptJournal::finish`] it).
    pub fn take_journal(&mut self) -> Option<ReceiptJournal> {
        self.journal.take()
    }

    /// Overrides the radio model.
    pub fn with_radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// Shards each epoch's source phase (and SIES evaluation) across this
    /// many scoped workers. Results are byte-identical for every thread
    /// count: sources are precomputed in deterministic post-order chunks,
    /// the tree walk itself stays serial, and partial evaluation sums
    /// combine under exactly associative modular arithmetic.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads.resolve();
        self
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// The struct-of-arrays arena the per-epoch walks actually use.
    pub fn flat(&self) -> &FlatTopology {
        &self.flat
    }

    /// The final PSR of the most recent epoch (what the querier saw) —
    /// used by harnesses that digest aggregates byte-for-byte.
    pub fn last_final_psr(&self) -> Option<&S::Psr> {
        self.prev_final.as_ref()
    }

    /// Shards `jobs` (one `(source, value)` pair per live source, in walk
    /// order) across the worker pool, returning per-job results aligned
    /// with `jobs` plus the summed in-worker CPU time. Chunk boundaries
    /// only affect how much epoch-shared setup ([`batch_source_init`]'s
    /// amortization) is repeated — never the bytes produced.
    ///
    /// [`batch_source_init`]: AggregationScheme::batch_source_init
    fn shard_source_init(
        scheme: &S,
        threads: usize,
        epoch: Epoch,
        jobs: &[(SourceId, u64)],
    ) -> (Vec<Result<S::Psr, SchemeError>>, Duration) {
        let shards = parallel::map_chunks(threads, jobs, |chunk| {
            let t0 = Instant::now();
            let out = scheme.batch_source_init(epoch, chunk);
            debug_assert_eq!(out.len(), chunk.len(), "one result per job required");
            (out, t0.elapsed())
        });
        let mut results = Vec::with_capacity(jobs.len());
        let mut cpu = Duration::ZERO;
        for (out, elapsed) in shards {
            results.extend(out);
            cpu += elapsed;
        }
        (results, cpu)
    }

    /// Runs a clean epoch: no failures, no attacks.
    pub fn run_epoch(&mut self, epoch: Epoch, values: &[u64]) -> EpochOutcome {
        self.run_epoch_with(epoch, values, &HashSet::new(), &[])
    }

    /// Runs one epoch with `failed` nodes (honest failures, reported to
    /// the querier and excluded from the contributor set) and adversarial
    /// `attacks` (covert).
    ///
    /// `values[i]` is source `i`'s reading this epoch.
    ///
    /// When a journal is attached ([`Self::attach_journal`]), one signed
    /// receipt is committed per call — covering every exit path,
    /// including early aborts (rejected reading, failed merge, empty
    /// root).
    pub fn run_epoch_with(
        &mut self,
        epoch: Epoch,
        values: &[u64],
        failed: &HashSet<NodeId>,
        attacks: &[Attack],
    ) -> EpochOutcome {
        let out = self.run_epoch_inner(epoch, values, failed, attacks);
        if let Some(journal) = self.journal.as_mut() {
            let mut receipt = receipt_base(epoch, &out.result, &out.stats, values, false);
            receipt.crash_injected = !failed.is_empty();
            receipt.attack_injected = !attacks.is_empty();
            journal.record(&mut receipt);
        }
        out
    }

    fn run_epoch_inner(
        &mut self,
        epoch: Epoch,
        values: &[u64],
        failed: &HashSet<NodeId>,
        attacks: &[Attack],
    ) -> EpochOutcome {
        assert_eq!(
            values.len() as u64,
            self.topology.num_sources(),
            "one value per source required"
        );

        // Everything recorded from here on is this epoch's activity; the
        // stats structs handed back below are diffs against `q0`. The
        // RAII span covers every exit path (including early aborts), so
        // `engine.epoch` is a complete wall-clock latency histogram and
        // the profiler's outermost stack frame.
        let q0 = self.meter.begin();
        let _epoch_span = tel::span!("engine.epoch");
        tel::event(
            epoch,
            EventKind::QueryDisseminated,
            self.topology.num_sources(),
            0,
        );
        // a = requested lane width (what SIES_LANES asked for), b = the
        // hardware-clamped width actually dispatched; they differ when a
        // 16-lane request lands on a machine without AVX-512.
        tel::event(
            epoch,
            EventKind::LaneDispatch,
            sies_crypto::lanes::lane_width() as u64,
            sies_crypto::lanes::effective_lane_width() as u64,
        );

        // Honest failures remove whole subtrees from the contributor set.
        let mut excluded: HashSet<SourceId> = HashSet::new();
        for &node in failed {
            for s in self.flat.sources_under(node) {
                excluded.insert(s);
            }
        }
        let contributors: Vec<SourceId> = (0..self.topology.num_sources() as SourceId)
            .filter(|s| !excluded.contains(s))
            .collect();

        // Per-node buffers come from the reusable scratch: cleared, not
        // reallocated (the `outputs` queues model the duplicate attack).
        let n_nodes = self.flat.num_nodes();
        self.scratch.reset(n_nodes);

        // Source phase, sharded: every live source's PSR is precomputed
        // across the worker pool before the (serial) tree walk consumes
        // them in post-order (the arena's cached order — nothing is
        // re-derived per epoch). `source_cpu` therefore covers the whole
        // population even when a rejected reading aborts the walk early.
        for &id32 in self.flat.post_order() {
            let id = id32 as usize;
            if failed.contains(&id) {
                continue;
            }
            if let Some(sid) = self.flat.source_id(id) {
                self.scratch.job_nodes.push(id);
                self.scratch.jobs.push((sid, values[sid as usize]));
            }
        }
        let (results, source_cpu) = {
            let _phase = tel::span!("engine.source_phase");
            Self::shard_source_init(self.scheme, self.threads, epoch, &self.scratch.jobs)
        };
        self.meter.source_cpu_ns.add(ns(source_cpu));
        tel::event(
            epoch,
            EventKind::SourceInit,
            self.scratch.jobs.len() as u64,
            0,
        );
        for (&id, res) in self.scratch.job_nodes.iter().zip(results) {
            self.scratch.precomputed[id] = Some(res);
        }

        let merge_span = tel::span!("engine.merge_phase");
        for &id32 in self.flat.post_order() {
            let id = id32 as usize;
            if failed.contains(&id) {
                continue;
            }
            let is_source = self.flat.is_source(id);
            let produced: Option<S::Psr> = if is_source {
                let psr = self.scratch.precomputed[id]
                    .take()
                    .expect("every live source was precomputed");
                self.meter.sources_run.incr();
                match psr {
                    Ok(psr) => Some(psr),
                    // A rejected reading aborts the epoch as a
                    // malformed outcome rather than panicking.
                    Err(e) => {
                        verdict_event(epoch, EventKind::EpochLost, id as u64);
                        return EpochOutcome {
                            result: Err(e),
                            stats: self.meter.finish(epoch, contributors, &q0),
                        };
                    }
                }
            } else {
                let inputs = &mut self.scratch.merge_inputs;
                inputs.clear();
                for &c in self.flat.children(id) {
                    inputs.append(&mut self.scratch.outputs[c as usize]);
                }
                if inputs.is_empty() {
                    None
                } else {
                    let t0 = Instant::now();
                    let merged = self.scheme.try_merge(inputs);
                    self.meter.aggregator_cpu_ns.add(ns(t0.elapsed()));
                    self.meter.aggregators_run.incr();
                    tel::event(epoch, EventKind::PsrMerged, id as u64, inputs.len() as u64);
                    match merged {
                        Ok(merged) => Some(merged),
                        Err(e) => {
                            verdict_event(epoch, EventKind::EpochLost, id as u64);
                            return EpochOutcome {
                                result: Err(e),
                                stats: self.meter.finish(epoch, contributors, &q0),
                            };
                        }
                    }
                }
            };

            let Some(mut psr) = produced else { continue };

            // The sink's extra pass (e.g. SECOA same-position SEAL
            // folding) happens before the aggregator→querier edge and is
            // charged to aggregator CPU.
            let parent = self.flat.parent(id);
            if parent.is_none() {
                let t0 = Instant::now();
                psr = self.scheme.sink_finalize(psr);
                self.meter.aggregator_cpu_ns.add(ns(t0.elapsed()));
            }

            // Apply covert attacks on this node's outgoing PSR.
            let mut copies = 1usize;
            let mut dropped = false;
            for attack in attacks {
                match *attack {
                    Attack::TamperAtNode(n) if n == id => self.scheme.tamper(&mut psr),
                    Attack::DropAtNode(n) if n == id => dropped = true,
                    Attack::DuplicateAtNode(n) if n == id => copies += 1,
                    _ => {}
                }
            }
            if dropped {
                continue;
            }

            // Account the transmission to the parent (or querier). Each
            // node deposits its outgoing PSR(s) in its own slot; the
            // parent drains its children's slots when it runs.
            let size = self.scheme.psr_wire_size(&psr) * copies;
            match parent {
                Some(_) => {
                    if is_source {
                        self.meter.sa_bytes.add(size as u64);
                        self.meter.sa_edges.incr();
                    } else {
                        self.meter.aa_bytes.add(size as u64);
                        self.meter.aa_edges.incr();
                    }
                    self.meter.energy_tx.add(self.radio.tx_energy(size));
                    self.meter.energy_rx.add(self.radio.rx_energy(size));
                }
                None => {
                    // The sink transmits the final PSR to the querier.
                    self.meter.aq_bytes.add(size as u64);
                    self.meter.energy_tx.add(self.radio.tx_energy(size));
                }
            }
            for _ in 0..copies {
                self.scratch.outputs[id].push(psr.clone());
            }
        }
        drop(merge_span);

        // Collect the final PSR at the root.
        let root = self.topology.root();
        let mut final_psr = match self.scratch.outputs[root].pop() {
            Some(p) => p,
            None => {
                verdict_event(epoch, EventKind::EpochLost, root as u64);
                return EpochOutcome {
                    result: Err(SchemeError::Malformed(
                        "no PSR reached the querier (all subtrees failed)".into(),
                    )),
                    stats: self.meter.finish(epoch, contributors, &q0),
                };
            }
        };

        // Replay attack: substitute the previous epoch's final PSR.
        if attacks.contains(&Attack::ReplayFinal) {
            if let Some(prev) = &self.prev_final {
                final_psr = prev.clone();
            }
        }
        self.prev_final = Some(final_psr.clone());

        let t0 = Instant::now();
        let result = {
            let _phase = tel::span!("engine.evaluate");
            self.scheme
                .evaluate_par(&final_psr, epoch, &contributors, self.threads)
        };
        self.meter.querier_cpu_ns.add(ns(t0.elapsed()));
        match &result {
            Ok(_) => verdict_event(epoch, EventKind::EpochAccepted, contributors.len() as u64),
            Err(_) => verdict_event(epoch, EventKind::EpochRejected, 0),
        }

        EpochOutcome {
            result,
            stats: self.meter.finish(epoch, contributors, &q0),
        }
    }

    /// Runs one epoch under the full fault-tolerance stack: lossy links
    /// with the ACK/NACK + re-solicitation recovery protocol
    /// ([`RecoveryConfig`]), within-epoch topology repair for `crashed`
    /// nodes, and covert `attacks`.
    ///
    /// Semantics that differ from [`run_epoch_with`](Self::run_epoch_with):
    ///
    /// * `crashed` nodes are *churn*: they neither transmit nor ACK.
    ///   Live children of a crashed aggregator re-attach to their backup
    ///   parent (nearest live ancestor) and still contribute. A crashed
    ///   sink loses the whole epoch.
    /// * Honest link loss triggers recovery; a subtree that stays
    ///   missing after re-solicitation is excluded from the contributor
    ///   set, so the epoch still verifies exactly over the survivors.
    /// * Covert attacks are modelled at a *compromised parent*: it ACKs
    ///   the child's PSR like an honest node (so recovery never fires)
    ///   and then tampers/drops/duplicates it in the merge while
    ///   reporting contributions unchanged. Detection is therefore
    ///   entirely up to the scheme, exactly as in the paper's model.
    ///
    /// Contributor-set exactness invariant: the reported contributor set
    /// equals the set of sources whose PSR was actually fused into the
    /// final aggregate **unless** a covert attack interfered — in which
    /// case [`RecoveredEpoch::aggregate_corrupted`] is true and a
    /// verifying scheme must reject.
    #[allow(clippy::too_many_arguments)]
    pub fn run_epoch_recovering(
        &mut self,
        epoch: Epoch,
        values: &[u64],
        crashed: &HashSet<NodeId>,
        attacks: &[Attack],
        radio: &LossyRadio,
        recovery: &RecoveryConfig,
        rng: &mut dyn RngCore,
    ) -> RecoveredEpoch {
        assert_eq!(
            values.len() as u64,
            self.topology.num_sources(),
            "one value per source required"
        );

        let q0 = self.meter.begin();
        let _epoch_span = tel::span!("engine.epoch");
        tel::event(
            epoch,
            EventKind::QueryDisseminated,
            self.topology.num_sources(),
            0,
        );
        // a = requested lane width (what SIES_LANES asked for), b = the
        // hardware-clamped width actually dispatched; they differ when a
        // 16-lane request lands on a machine without AVX-512.
        tel::event(
            epoch,
            EventKind::LaneDispatch,
            sies_crypto::lanes::lane_width() as u64,
            sies_crypto::lanes::effective_lane_width() as u64,
        );
        let mut report = RecoveryReport::default();
        let mut tally = UplinkTally::default();
        let repairs = self.flat.repair_plan(crashed);
        report.adoptions = repairs.adoptions.len() as u64;
        report.stranded = repairs.stranded.len() as u64;
        // Detection-side churn signal: the `crash_churn` alert rule
        // fires on any nonzero delta of this counter.
        tel::count!("engine.adoptions", report.adoptions);
        if !repairs.adoptions.is_empty() || !repairs.stranded.is_empty() {
            // The tree changed under us: drop any precomputed epoch
            // material so the warmer re-plans against the repaired
            // world. Safe unconditionally — correctness never depends
            // on pool contents.
            self.scheme.prewarm_cancel();
        }

        // A crashed sink means nothing can reach the querier: the epoch
        // is an availability loss, never a false accept or reject.
        if crashed.contains(&self.topology.root()) {
            verdict_event(epoch, EventKind::EpochLost, self.topology.root() as u64);
            return RecoveredEpoch {
                outcome: EpochOutcome {
                    result: Err(SchemeError::Malformed("sink crashed; epoch lost".into())),
                    stats: self.meter.finish(epoch, Vec::new(), &q0),
                },
                report,
                repairs,
                aggregate_corrupted: false,
            };
        }

        // Re-attach handshake: request up, ACK back, per orphan.
        let reattach_cost = (REATTACH_BYTES + ACK_BYTES) as u64 * report.adoptions;
        report.control_bytes += reattach_cost;
        self.meter.control_bytes.add(reattach_cost);
        for (&orphan, &adopter) in &repairs.adoptions {
            tel::event(epoch, EventKind::Reattach, orphan as u64, adopter as u64);
        }

        // Effective topology: surviving children plus adopted orphans.
        let n_nodes = self.flat.num_nodes();
        let mut eff_children: Vec<Vec<NodeId>> = vec![Vec::new(); n_nodes];
        for (id, eff) in eff_children.iter_mut().enumerate() {
            if crashed.contains(&id) {
                continue;
            }
            for &c in self.flat.children(id) {
                let c = c as usize;
                if crashed.contains(&c) {
                    // A live parent noticed its child never transmitted
                    // and reports the failure up to the querier, one
                    // frame per hop.
                    let cost = FAILURE_REPORT_BYTES as u64 * (self.flat.depth(id) as u64 + 1);
                    report.failure_reports += 1;
                    report.control_bytes += cost;
                    self.meter.control_bytes.add(cost);
                    tel::count!("engine.failure_reports");
                    tel::event(epoch, EventKind::FailureReport, c as u64, id as u64);
                } else {
                    eff.push(c);
                }
            }
        }
        for (&orphan, &adopter) in &repairs.adoptions {
            eff_children[adopter].push(orphan);
        }
        // Deterministic processing order regardless of adoption order.
        for children in &mut eff_children {
            children.sort_unstable();
        }

        // Post-order over the repaired tree.
        let root = self.topology.root();
        let mut order = Vec::with_capacity(n_nodes);
        let mut stack = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
            } else {
                stack.push((id, true));
                for &c in &eff_children[id] {
                    stack.push((c, false));
                }
            }
        }

        // Per-node slots: outgoing PSR, the sources it folds in, and
        // whether a covert attack poisoned it.
        let mut psr_slot: Vec<Option<S::Psr>> = (0..n_nodes).map(|_| None).collect();
        let mut contrib_slot: Vec<Vec<SourceId>> = vec![Vec::new(); n_nodes];
        let mut poison_slot: Vec<bool> = vec![false; n_nodes];

        // Source phase, sharded over the worker pool (see run_epoch_with):
        // the repaired-tree walk below stays serial, so the per-uplink RNG
        // draw order — and with it every recovery decision — is untouched
        // by the thread count.
        self.scratch.reset(n_nodes);
        for &id in &order {
            if let Some(sid) = self.flat.source_id(id) {
                self.scratch.job_nodes.push(id);
                self.scratch.jobs.push((sid, values[sid as usize]));
            }
        }
        let (results, source_cpu) = {
            let _phase = tel::span!("engine.source_phase");
            Self::shard_source_init(self.scheme, self.threads, epoch, &self.scratch.jobs)
        };
        self.meter.source_cpu_ns.add(ns(source_cpu));
        tel::event(
            epoch,
            EventKind::SourceInit,
            self.scratch.jobs.len() as u64,
            0,
        );
        for (&id, res) in self.scratch.job_nodes.iter().zip(results) {
            self.scratch.precomputed[id] = Some(res);
        }

        for &id in &order {
            let depth = self.flat.depth(id);
            match self.flat.source_id(id) {
                Some(sid) => {
                    let produced = self.scratch.precomputed[id]
                        .take()
                        .expect("every live source was precomputed");
                    self.meter.sources_run.incr();
                    match produced {
                        Ok(psr) => {
                            psr_slot[id] = Some(psr);
                            contrib_slot[id].push(sid);
                        }
                        Err(_) => {
                            // The reading was rejected; this source sits
                            // the epoch out like an honest failure.
                            report.init_failures += 1;
                        }
                    }
                }
                None => {
                    let mut inputs: Vec<S::Psr> = Vec::new();
                    let mut contrib: Vec<SourceId> = Vec::new();
                    let mut poisoned = false;
                    for &c in &eff_children[id] {
                        let Some(child_psr) = psr_slot[c].take() else {
                            // Silent child (crashed source or an empty
                            // subtree): report the failure upward.
                            let cost = FAILURE_REPORT_BYTES as u64 * (depth as u64 + 1);
                            report.failure_reports += 1;
                            report.control_bytes += cost;
                            self.meter.control_bytes.add(cost);
                            tel::count!("engine.failure_reports");
                            self.evbuf
                                .push(epoch, EventKind::FailureReport, c as u64, id as u64);
                            continue;
                        };
                        let size = self.scheme.psr_wire_size(&child_psr);
                        let uplink = recovery.simulate_uplink(radio, rng);
                        tally.add(&uplink);

                        // Accounting: first copy in the Table V classes,
                        // retransmissions and control separately.
                        if self.flat.is_source(c) {
                            self.meter.sa_bytes.add(size as u64);
                            self.meter.sa_edges.incr();
                        } else {
                            self.meter.aa_bytes.add(size as u64);
                            self.meter.aa_edges.incr();
                        }
                        self.meter
                            .retransmit_bytes
                            .add(size as u64 * (uplink.data_attempts as u64 - 1));
                        let ctl = uplink.acks as u64 * ACK_BYTES as u64
                            + uplink.nacks as u64 * NACK_BYTES as u64
                            + uplink.resolicit_rounds_used as u64
                                * RESOLICIT_BYTES as u64
                                * (depth as u64 + 1);
                        report.control_bytes += ctl;
                        self.meter.control_bytes.add(ctl);
                        for _ in 0..uplink.data_attempts {
                            self.meter.energy_tx.add(self.radio.tx_energy(size));
                        }
                        self.meter
                            .energy_rx
                            .add(self.radio.rx_energy(size) * uplink.acks as f64);
                        report.link.attempts += uplink.data_attempts as u64;
                        if uplink.data_attempts > 1 {
                            report.link.retransmitted_links += 1;
                            self.evbuf.push(
                                epoch,
                                EventKind::Retransmit,
                                c as u64,
                                uplink.data_attempts as u64 - 1,
                            );
                        }
                        report.acks += uplink.acks as u64;
                        report.nacks += uplink.nacks as u64;
                        report.resolicitations += uplink.resolicit_rounds_used as u64;
                        report.backoff_ms += uplink.backoff_ms;
                        if uplink.nacks > 0 {
                            self.evbuf.push(
                                epoch,
                                EventKind::NackSent,
                                c as u64,
                                uplink.nacks as u64,
                            );
                        }
                        if uplink.resolicit_rounds_used > 0 {
                            self.evbuf.push(
                                epoch,
                                EventKind::Resolicit,
                                c as u64,
                                uplink.resolicit_rounds_used as u64,
                            );
                        }

                        if !uplink.delivered {
                            // Permanent honest loss: exclude the subtree
                            // and tell the querier.
                            report.link.failed_links += 1;
                            report.lost_links += 1;
                            let cost = FAILURE_REPORT_BYTES as u64 * (depth as u64 + 1);
                            report.failure_reports += 1;
                            report.control_bytes += cost;
                            self.meter.control_bytes.add(cost);
                            tel::count!("engine.failure_reports");
                            self.evbuf
                                .push(epoch, EventKind::FailureReport, c as u64, id as u64);
                            continue;
                        }
                        report.delivered_links += 1;
                        if uplink.resolicit_rounds_used > 0 {
                            report.recovered_by_resolicit += 1;
                        }

                        // Covert attacks at this (compromised) merge
                        // point: contribution reporting is unchanged.
                        let mut copies = 1usize;
                        let mut child_psr = child_psr;
                        for attack in attacks {
                            match *attack {
                                Attack::TamperAtNode(n) if n == c => {
                                    self.scheme.tamper(&mut child_psr);
                                    poisoned = true;
                                }
                                Attack::DropAtNode(n) if n == c => {
                                    copies = 0;
                                    poisoned = true;
                                }
                                Attack::DuplicateAtNode(n) if n == c => {
                                    copies += 1;
                                    poisoned = true;
                                }
                                _ => {}
                            }
                        }
                        contrib.append(&mut contrib_slot[c]);
                        if copies > 0 {
                            poisoned |= poison_slot[c];
                        }
                        for _ in 0..copies {
                            inputs.push(child_psr.clone());
                        }
                    }

                    if inputs.is_empty() {
                        // Nothing to send (every child lost, crashed, or
                        // covertly dropped). Contributions that survived
                        // to this point are lost with the silent parent.
                        continue;
                    }
                    let t0 = Instant::now();
                    let merged = self.scheme.try_merge(&inputs);
                    self.meter.aggregator_cpu_ns.add(ns(t0.elapsed()));
                    self.meter.aggregators_run.incr();
                    self.evbuf
                        .push(epoch, EventKind::PsrMerged, id as u64, inputs.len() as u64);
                    match merged {
                        Ok(m) => {
                            psr_slot[id] = Some(m);
                            contrib_slot[id] = contrib;
                            poison_slot[id] = poisoned;
                        }
                        Err(_) => {
                            // A merge the scheme itself rejects excludes
                            // this subtree instead of panicking.
                            report.merge_failures += 1;
                        }
                    }
                }
            }
        }

        tally.flush();
        self.evbuf.flush();

        // Sink → querier.
        let Some(mut final_psr) = psr_slot[root].take() else {
            verdict_event(epoch, EventKind::EpochLost, root as u64);
            return RecoveredEpoch {
                outcome: EpochOutcome {
                    result: Err(SchemeError::Malformed(
                        "no PSR reached the querier (all subtrees failed)".into(),
                    )),
                    stats: self.meter.finish(epoch, Vec::new(), &q0),
                },
                report,
                repairs,
                aggregate_corrupted: false,
            };
        };
        let mut corrupted = poison_slot[root];

        let t0 = Instant::now();
        final_psr = self.scheme.sink_finalize(final_psr);
        self.meter.aggregator_cpu_ns.add(ns(t0.elapsed()));

        // Attacks on the sink's own outgoing PSR (no parent exists to
        // model them at): tampering corrupts the final aggregate; a
        // covert drop starves the querier — an availability loss, not a
        // corruption.
        for attack in attacks {
            match *attack {
                Attack::TamperAtNode(n) if n == root => {
                    self.scheme.tamper(&mut final_psr);
                    corrupted = true;
                }
                Attack::DropAtNode(n) if n == root => {
                    verdict_event(epoch, EventKind::EpochLost, root as u64);
                    return RecoveredEpoch {
                        outcome: EpochOutcome {
                            result: Err(SchemeError::Malformed(
                                "final PSR never reached the querier".into(),
                            )),
                            stats: self.meter.finish(epoch, Vec::new(), &q0),
                        },
                        report,
                        repairs,
                        aggregate_corrupted: false,
                    };
                }
                _ => {}
            }
        }

        if attacks.contains(&Attack::ReplayFinal) {
            if let Some(prev) = &self.prev_final {
                final_psr = prev.clone();
                corrupted = true;
            }
        }
        self.prev_final = Some(final_psr.clone());

        let size = self.scheme.psr_wire_size(&final_psr);
        self.meter.aq_bytes.add(size as u64);
        self.meter.energy_tx.add(self.radio.tx_energy(size));

        let mut contributors = std::mem::take(&mut contrib_slot[root]);
        contributors.sort_unstable();

        let t0 = Instant::now();
        let result = self
            .scheme
            .evaluate_par(&final_psr, epoch, &contributors, self.threads);
        self.meter.querier_cpu_ns.add(ns(t0.elapsed()));
        match &result {
            Ok(_) => verdict_event(epoch, EventKind::EpochAccepted, contributors.len() as u64),
            Err(_) => verdict_event(epoch, EventKind::EpochRejected, 0),
        }

        RecoveredEpoch {
            outcome: EpochOutcome {
                result,
                stats: self.meter.finish(epoch, contributors, &q0),
            },
            report,
            repairs,
            aggregate_corrupted: corrupted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Role;

    /// A transparent scheme for engine-level tests: the PSR is the plain
    /// sum plus a contribution count, so every engine behaviour is
    /// observable without cryptography.
    struct PlainSum;

    #[derive(Clone, Debug, PartialEq)]
    struct PlainPsr {
        sum: u64,
        count: u64,
    }

    impl AggregationScheme for PlainSum {
        type Psr = PlainPsr;

        fn name(&self) -> &'static str {
            "plain"
        }

        fn source_init(&self, _s: SourceId, _e: Epoch, value: u64) -> PlainPsr {
            PlainPsr {
                sum: value,
                count: 1,
            }
        }

        fn merge(&self, psrs: &[PlainPsr]) -> PlainPsr {
            PlainPsr {
                sum: psrs.iter().map(|p| p.sum).sum(),
                count: psrs.iter().map(|p| p.count).sum(),
            }
        }

        fn evaluate(
            &self,
            f: &PlainPsr,
            _epoch: Epoch,
            contributors: &[SourceId],
        ) -> Result<EvaluatedSum, SchemeError> {
            // "Verification": the number of fused PSRs must equal the
            // reported contributor count.
            if f.count != contributors.len() as u64 {
                return Err(SchemeError::VerificationFailed(format!(
                    "{} contributions, {} contributors",
                    f.count,
                    contributors.len()
                )));
            }
            Ok(EvaluatedSum {
                sum: f.sum as f64,
                integrity_checked: true,
            })
        }

        fn psr_wire_size(&self, _p: &PlainPsr) -> usize {
            16
        }

        fn tamper(&self, psr: &mut PlainPsr) {
            psr.sum += 1_000_000;
        }
    }

    fn engine_fixture(n: u64, f: usize) -> (Topology, PlainSum) {
        (Topology::complete_tree(n, f), PlainSum)
    }

    #[test]
    fn clean_epoch_sums_exactly() {
        let (topo, scheme) = engine_fixture(16, 4);
        let mut engine = Engine::new(&scheme, &topo);
        let values: Vec<u64> = (1..=16).collect();
        let out = engine.run_epoch(0, &values);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 136.0);
        assert_eq!(out.stats.sources_run, 16);
        assert_eq!(out.stats.contributors.len(), 16);
    }

    #[test]
    fn byte_accounting_matches_topology() {
        let (topo, scheme) = engine_fixture(16, 4);
        let mut engine = Engine::new(&scheme, &topo);
        let out = engine.run_epoch(0, &[1; 16]);
        let b = out.stats.bytes;
        // 16 source edges, (4 aggregators → sink) agg edges, 1 querier edge.
        assert_eq!(b.source_to_agg_edges, 16);
        assert_eq!(b.source_to_agg, 16 * 16);
        assert_eq!(b.agg_to_agg_edges, 4);
        assert_eq!(b.agg_to_agg, 4 * 16);
        assert_eq!(b.agg_to_querier, 16);
        assert!((b.per_sa_edge() - 16.0).abs() < 1e-9);
        assert!((b.per_aa_edge() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn energy_accounting_positive_and_consistent() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let out = engine.run_epoch(0, &[1; 8]);
        assert!(out.stats.energy_tx > 0.0);
        assert!(out.stats.energy_rx > 0.0);
        // Every transmission except sink→querier is also received.
        assert!(out.stats.energy_tx > out.stats.energy_rx);
    }

    #[test]
    fn honest_source_failure_excluded_and_verifies() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(3).unwrap();
        let failed: HashSet<NodeId> = [node].into();
        let out = engine.run_epoch_with(0, &[10; 8], &failed, &[]);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 70.0);
        assert_eq!(out.stats.contributors.len(), 7);
        assert!(!out.stats.contributors.contains(&3));
    }

    #[test]
    fn honest_aggregator_failure_excludes_subtree() {
        let (topo, scheme) = engine_fixture(16, 4);
        let mut engine = Engine::new(&scheme, &topo);
        // Fail the first level-1 aggregator: 4 sources vanish.
        let agg = topo.node(topo.root()).children[0];
        let failed: HashSet<NodeId> = [agg].into();
        let out = engine.run_epoch_with(0, &[5; 16], &failed, &[]);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 60.0);
        assert_eq!(out.stats.contributors.len(), 12);
    }

    #[test]
    fn covert_drop_detected_by_verifying_scheme() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(2).unwrap();
        let out = engine.run_epoch_with(0, &[1; 8], &HashSet::new(), &[Attack::DropAtNode(node)]);
        assert!(matches!(
            out.result,
            Err(SchemeError::VerificationFailed(_))
        ));
    }

    #[test]
    fn covert_duplicate_detected() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(0).unwrap();
        let out = engine.run_epoch_with(
            0,
            &[1; 8],
            &HashSet::new(),
            &[Attack::DuplicateAtNode(node)],
        );
        assert!(out.result.is_err());
    }

    #[test]
    fn tamper_changes_result() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(1).unwrap();
        let out = engine.run_epoch_with(0, &[1; 4], &HashSet::new(), &[Attack::TamperAtNode(node)]);
        // PlainSum's "verification" doesn't cover tampering with the sum,
        // so the attack slips through — exactly why SIES embeds shares.
        let res = out.result.unwrap();
        assert_eq!(res.sum, 1_000_004.0);
    }

    #[test]
    fn replay_uses_previous_epoch_final() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let first = engine.run_epoch(0, &[1; 4]).result.unwrap();
        assert_eq!(first.sum, 4.0);
        let replayed = engine
            .run_epoch_with(1, &[100; 4], &HashSet::new(), &[Attack::ReplayFinal])
            .result
            .unwrap();
        // PlainSum cannot detect it; the replayed sum is epoch 0's.
        assert_eq!(replayed.sum, 4.0);
    }

    #[test]
    fn total_network_failure_reported() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let failed: HashSet<NodeId> = [topo.root()].into();
        let out = engine.run_epoch_with(0, &[1; 4], &failed, &[]);
        assert!(matches!(out.result, Err(SchemeError::Malformed(_))));
    }

    #[test]
    #[should_panic(expected = "one value per source")]
    fn wrong_value_count_panics() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        engine.run_epoch(0, &[1; 3]);
    }

    #[test]
    fn threaded_epoch_matches_serial_engine() {
        let (topo, scheme) = engine_fixture(16, 4);
        let values: Vec<u64> = (1..=16).map(|v| v * 3).collect();
        let failed: HashSet<NodeId> = [topo.source_node(6).unwrap()].into();
        let attacks = [Attack::TamperAtNode(topo.source_node(2).unwrap())];
        let mut serial = Engine::new(&scheme, &topo);
        let base = serial.run_epoch_with(0, &values, &failed, &attacks);
        for threads in [1, 2, 4, 8] {
            let mut engine = Engine::new(&scheme, &topo).with_threads(Threads::fixed(threads));
            assert_eq!(engine.threads(), threads);
            let out = engine.run_epoch_with(0, &values, &failed, &attacks);
            assert_eq!(out.result, base.result, "threads = {threads}");
            assert_eq!(out.stats.bytes, base.stats.bytes, "threads = {threads}");
            assert_eq!(out.stats.contributors, base.stats.contributors);
            assert_eq!(out.stats.sources_run, base.stats.sources_run);
        }
    }

    mod recovering {
        use super::*;
        use crate::radio::LossyRadio;
        use crate::recovery::RecoveryConfig;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        fn lossless() -> LossyRadio {
            LossyRadio::new(0.0, 3)
        }

        #[test]
        fn clean_epoch_matches_plain_run() {
            let (topo, scheme) = engine_fixture(16, 4);
            let mut engine = Engine::new(&scheme, &topo);
            let values: Vec<u64> = (1..=16).collect();
            let mut rng = StdRng::seed_from_u64(0);
            let run = engine.run_epoch_recovering(
                0,
                &values,
                &HashSet::new(),
                &[],
                &lossless(),
                &RecoveryConfig::default(),
                &mut rng,
            );
            let res = run.outcome.result.unwrap();
            assert_eq!(res.sum, 136.0);
            assert!(!run.aggregate_corrupted);
            assert!(run.repairs.is_empty());
            assert_eq!(run.outcome.stats.bytes.retransmit, 0);
            // One ACK per uplink transfer, nothing else.
            assert_eq!(run.report.acks, run.report.delivered_links);
            assert_eq!(run.report.lost_links, 0);
            assert_eq!(run.report.delivery_rate(), 1.0);
        }

        #[test]
        fn crashed_aggregator_repairs_to_backup_parent_exactly() {
            // complete_tree(16, 4): root + 4 aggregators + 16 sources.
            // Crash one aggregator: its 4 source children re-attach to
            // the root, and the epoch still sums ALL 16 sources.
            let (topo, scheme) = engine_fixture(16, 4);
            let crashed_agg = topo.node(topo.root()).children[1];
            assert!(matches!(topo.node(crashed_agg).role, Role::Aggregator));
            let mut engine = Engine::new(&scheme, &topo);
            let values: Vec<u64> = (1..=16).collect();
            let mut rng = StdRng::seed_from_u64(1);
            let run = engine.run_epoch_recovering(
                0,
                &values,
                &HashSet::from([crashed_agg]),
                &[],
                &lossless(),
                &RecoveryConfig::default(),
                &mut rng,
            );
            let res = run.outcome.result.unwrap();
            assert_eq!(res.sum, 136.0, "repair must not lose any contribution");
            assert_eq!(run.report.adoptions, 4);
            assert_eq!(run.repairs.adoptions.len(), 4);
            assert!(run.repairs.adoptions.values().all(|&p| p == topo.root()));
            assert_eq!(run.outcome.stats.contributors.len(), 16);
            // The re-attach handshakes were paid for.
            assert!(run.outcome.stats.bytes.control > 0);
        }

        #[test]
        fn crashed_source_is_excluded_not_fatal() {
            let (topo, scheme) = engine_fixture(16, 4);
            let dead = topo.source_node(5).unwrap();
            let mut engine = Engine::new(&scheme, &topo);
            let mut rng = StdRng::seed_from_u64(2);
            let run = engine.run_epoch_recovering(
                0,
                &[10; 16],
                &HashSet::from([dead]),
                &[],
                &lossless(),
                &RecoveryConfig::default(),
                &mut rng,
            );
            let res = run.outcome.result.unwrap();
            assert_eq!(res.sum, 150.0);
            assert_eq!(run.outcome.stats.contributors.len(), 15);
            assert!(run.report.failure_reports >= 1);
        }

        #[test]
        fn sink_crash_is_availability_loss() {
            let (topo, scheme) = engine_fixture(4, 2);
            let mut engine = Engine::new(&scheme, &topo);
            let mut rng = StdRng::seed_from_u64(3);
            let run = engine.run_epoch_recovering(
                0,
                &[1; 4],
                &HashSet::from([topo.root()]),
                &[],
                &lossless(),
                &RecoveryConfig::default(),
                &mut rng,
            );
            assert!(matches!(run.outcome.result, Err(SchemeError::Malformed(_))));
            assert!(!run.aggregate_corrupted);
        }

        #[test]
        fn covert_attacks_poison_ground_truth() {
            // Drop and Duplicate change the fused count, which PlainSum's
            // count check catches; Tamper slips through PlainSum but the
            // ground-truth flag still marks the aggregate corrupted.
            let (topo, scheme) = engine_fixture(8, 2);
            let victim = topo.source_node(3).unwrap();
            for (attack, expect_reject) in [
                (Attack::DropAtNode(victim), true),
                (Attack::DuplicateAtNode(victim), true),
                (Attack::TamperAtNode(victim), false),
            ] {
                let mut engine = Engine::new(&scheme, &topo);
                let mut rng = StdRng::seed_from_u64(4);
                let run = engine.run_epoch_recovering(
                    0,
                    &[1; 8],
                    &HashSet::new(),
                    &[attack],
                    &lossless(),
                    &RecoveryConfig::default(),
                    &mut rng,
                );
                assert!(
                    run.aggregate_corrupted,
                    "{attack:?} must poison the aggregate"
                );
                assert_eq!(
                    matches!(run.outcome.result, Err(SchemeError::VerificationFailed(_))),
                    expect_reject,
                    "unexpected verdict for {attack:?}"
                );
            }
        }

        #[test]
        fn attack_on_honestly_lost_subtree_is_not_corruption() {
            // The attacker sits at the parent of a source that crashed:
            // there is no PSR to tamper with, so the aggregate stays
            // clean and the epoch verifies over the survivors.
            let (topo, scheme) = engine_fixture(8, 2);
            let victim = topo.source_node(3).unwrap();
            let mut engine = Engine::new(&scheme, &topo);
            let mut rng = StdRng::seed_from_u64(5);
            let run = engine.run_epoch_recovering(
                0,
                &[1; 8],
                &HashSet::from([victim]),
                &[Attack::TamperAtNode(victim)],
                &lossless(),
                &RecoveryConfig::default(),
                &mut rng,
            );
            assert!(!run.aggregate_corrupted);
            assert_eq!(run.outcome.result.unwrap().sum, 7.0);
        }

        #[test]
        fn lossy_epochs_never_false_reject() {
            let (topo, scheme) = engine_fixture(16, 4);
            let mut engine = Engine::new(&scheme, &topo);
            let radio = LossyRadio::new(0.3, 1);
            let cfg = RecoveryConfig::new(1, 0.5);
            let mut rng = StdRng::seed_from_u64(6);
            let values: Vec<u64> = (1..=16).collect();
            let mut losses_seen = false;
            for epoch in 0..50 {
                let run = engine.run_epoch_recovering(
                    epoch,
                    &values,
                    &HashSet::new(),
                    &[],
                    &radio,
                    &cfg,
                    &mut rng,
                );
                assert!(!run.aggregate_corrupted);
                match run.outcome.result {
                    Ok(res) => {
                        let expected: u64 = run
                            .outcome
                            .stats
                            .contributors
                            .iter()
                            .map(|&s| values[s as usize])
                            .sum();
                        assert_eq!(res.sum, expected as f64);
                    }
                    Err(SchemeError::Malformed(_)) => {} // availability loss
                    Err(e) => panic!("honest loss misread as attack: {e:?}"),
                }
                losses_seen |= run.report.lost_links > 0;
            }
            assert!(losses_seen, "30% loss never cost a link in 50 epochs");
        }

        #[test]
        fn recovery_traffic_is_accounted() {
            let (topo, scheme) = engine_fixture(16, 4);
            let mut engine = Engine::new(&scheme, &topo);
            let radio = LossyRadio::new(0.4, 3);
            let mut rng = StdRng::seed_from_u64(7);
            let run = engine.run_epoch_recovering(
                0,
                &[1; 16],
                &HashSet::new(),
                &[],
                &radio,
                &RecoveryConfig::default(),
                &mut rng,
            );
            let bytes = &run.outcome.stats.bytes;
            assert!(bytes.retransmit > 0, "40% loss must cause retransmissions");
            assert!(
                bytes.control > 0,
                "ACKs alone make control traffic non-zero"
            );
            assert!(bytes.overhead_factor() > 1.0);
            // First-copy data classes stay comparable to the lossless
            // run: at most one PSR per surviving edge (20 uplinks plus
            // the sink→querier hop).
            assert!(bytes.data_total() <= 21 * 16);
        }
    }
}
