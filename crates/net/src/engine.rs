//! The epoch-driven aggregation engine: plays every role in-process,
//! walking the tree bottom-up each epoch, with timing, byte, and energy
//! accounting plus failure and attack injection.

use crate::energy::RadioModel;
use crate::scheme::{AggregationScheme, EvaluatedSum, SchemeError};
use crate::topology::{NodeId, Role, Topology};
use sies_core::{Epoch, SourceId};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// An adversarial action injected into one epoch. All attacks are *covert*:
/// contributor reporting is unchanged, so an honest querier cannot tell a
/// priori that anything happened — detection must come from the scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Modify the PSR leaving `node` (scheme-specific tamper).
    TamperAtNode(NodeId),
    /// Silently discard the PSR leaving `node`.
    DropAtNode(NodeId),
    /// Deliver the PSR leaving `node` twice to its parent.
    DuplicateAtNode(NodeId),
    /// Replace the final PSR with the previous epoch's final PSR (replay).
    ReplayFinal,
}

/// Per-edge-class byte totals for one epoch (paper Table V's three rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeBytes {
    /// Total bytes on source→aggregator edges.
    pub source_to_agg: u64,
    /// Number of source→aggregator transmissions.
    pub source_to_agg_edges: u64,
    /// Total bytes on aggregator→aggregator edges.
    pub agg_to_agg: u64,
    /// Number of aggregator→aggregator transmissions.
    pub agg_to_agg_edges: u64,
    /// Bytes on the single aggregator→querier edge.
    pub agg_to_querier: u64,
}

impl EdgeBytes {
    /// Mean bytes per source→aggregator edge.
    pub fn per_sa_edge(&self) -> f64 {
        if self.source_to_agg_edges == 0 {
            0.0
        } else {
            self.source_to_agg as f64 / self.source_to_agg_edges as f64
        }
    }

    /// Mean bytes per aggregator→aggregator edge.
    pub fn per_aa_edge(&self) -> f64 {
        if self.agg_to_agg_edges == 0 {
            0.0
        } else {
            self.agg_to_agg as f64 / self.agg_to_agg_edges as f64
        }
    }
}

/// Measurements collected over one epoch.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// The epoch.
    pub epoch: Epoch,
    /// Total CPU time spent in source initialization.
    pub source_cpu: Duration,
    /// Number of sources that ran initialization.
    pub sources_run: u64,
    /// Total CPU time spent merging at aggregators.
    pub aggregator_cpu: Duration,
    /// Number of aggregators that merged at least one PSR.
    pub aggregators_run: u64,
    /// CPU time of the querier's evaluation phase.
    pub querier_cpu: Duration,
    /// Byte totals per edge class.
    pub bytes: EdgeBytes,
    /// Total radio transmit energy across the network (joules).
    pub energy_tx: f64,
    /// Total radio receive energy across the network (joules).
    pub energy_rx: f64,
    /// Sources reported as contributing (honest failures excluded).
    pub contributors: Vec<SourceId>,
}

impl EpochStats {
    /// Mean initialization time per source.
    pub fn per_source_cpu(&self) -> Duration {
        if self.sources_run == 0 {
            Duration::ZERO
        } else {
            self.source_cpu / self.sources_run as u32
        }
    }

    /// Mean merge time per aggregator.
    pub fn per_aggregator_cpu(&self) -> Duration {
        if self.aggregators_run == 0 {
            Duration::ZERO
        } else {
            self.aggregator_cpu / self.aggregators_run as u32
        }
    }
}

/// The outcome of one epoch: the querier's verdict plus measurements.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The evaluation result (an integrity error is an *outcome*, not an
    /// engine failure).
    pub result: Result<EvaluatedSum, SchemeError>,
    /// Measurements.
    pub stats: EpochStats,
}

/// The simulation engine for one deployed scheme on one topology.
pub struct Engine<'a, S: AggregationScheme> {
    scheme: &'a S,
    topology: &'a Topology,
    radio: RadioModel,
    /// Cached final PSR of the previous epoch, for replay attacks.
    prev_final: Option<S::Psr>,
}

impl<'a, S: AggregationScheme> Engine<'a, S> {
    /// Creates an engine with the default radio model.
    pub fn new(scheme: &'a S, topology: &'a Topology) -> Self {
        Engine { scheme, topology, radio: RadioModel::default(), prev_final: None }
    }

    /// Overrides the radio model.
    pub fn with_radio(mut self, radio: RadioModel) -> Self {
        self.radio = radio;
        self
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// Runs a clean epoch: no failures, no attacks.
    pub fn run_epoch(&mut self, epoch: Epoch, values: &[u64]) -> EpochOutcome {
        self.run_epoch_with(epoch, values, &HashSet::new(), &[])
    }

    /// Runs one epoch with `failed` nodes (honest failures, reported to
    /// the querier and excluded from the contributor set) and adversarial
    /// `attacks` (covert).
    ///
    /// `values[i]` is source `i`'s reading this epoch.
    pub fn run_epoch_with(
        &mut self,
        epoch: Epoch,
        values: &[u64],
        failed: &HashSet<NodeId>,
        attacks: &[Attack],
    ) -> EpochOutcome {
        assert_eq!(
            values.len() as u64,
            self.topology.num_sources(),
            "one value per source required"
        );

        let mut stats = EpochStats {
            epoch,
            source_cpu: Duration::ZERO,
            sources_run: 0,
            aggregator_cpu: Duration::ZERO,
            aggregators_run: 0,
            querier_cpu: Duration::ZERO,
            bytes: EdgeBytes::default(),
            energy_tx: 0.0,
            energy_rx: 0.0,
            contributors: Vec::new(),
        };

        // Honest failures remove whole subtrees from the contributor set.
        let mut excluded: HashSet<SourceId> = HashSet::new();
        for &node in failed {
            for s in self.topology.sources_under(node) {
                excluded.insert(s);
            }
        }
        stats.contributors = (0..self.topology.num_sources() as SourceId)
            .filter(|s| !excluded.contains(s))
            .collect();

        // Per-node output PSRs (duplicated entries model the duplicate
        // attack).
        let n_nodes = self.topology.nodes().len();
        let mut outputs: Vec<Vec<S::Psr>> = (0..n_nodes).map(|_| Vec::new()).collect();

        for id in self.topology.post_order() {
            if failed.contains(&id) {
                continue;
            }
            let node = self.topology.node(id);
            let produced: Option<S::Psr> = match node.role {
                Role::Source(sid) => {
                    let t0 = Instant::now();
                    let psr = self.scheme.source_init(sid, epoch, values[sid as usize]);
                    stats.source_cpu += t0.elapsed();
                    stats.sources_run += 1;
                    Some(psr)
                }
                Role::Aggregator => {
                    let inputs: Vec<S::Psr> = node
                        .children
                        .iter()
                        .flat_map(|&c| outputs[c].drain(..).collect::<Vec<_>>())
                        .collect();
                    if inputs.is_empty() {
                        None
                    } else {
                        let t0 = Instant::now();
                        let merged = self.scheme.merge(&inputs);
                        stats.aggregator_cpu += t0.elapsed();
                        stats.aggregators_run += 1;
                        Some(merged)
                    }
                }
            };

            let Some(mut psr) = produced else { continue };

            // The sink's extra pass (e.g. SECOA same-position SEAL
            // folding) happens before the aggregator→querier edge and is
            // charged to aggregator CPU.
            if node.parent.is_none() {
                let t0 = Instant::now();
                psr = self.scheme.sink_finalize(psr);
                stats.aggregator_cpu += t0.elapsed();
            }

            // Apply covert attacks on this node's outgoing PSR.
            let mut copies = 1usize;
            let mut dropped = false;
            for attack in attacks {
                match *attack {
                    Attack::TamperAtNode(n) if n == id => self.scheme.tamper(&mut psr),
                    Attack::DropAtNode(n) if n == id => dropped = true,
                    Attack::DuplicateAtNode(n) if n == id => copies += 1,
                    _ => {}
                }
            }
            if dropped {
                continue;
            }

            // Account the transmission to the parent (or querier). Each
            // node deposits its outgoing PSR(s) in its own slot; the
            // parent drains its children's slots when it runs.
            let size = self.scheme.psr_wire_size(&psr) * copies;
            match node.parent {
                Some(_) => {
                    match node.role {
                        Role::Source(_) => {
                            stats.bytes.source_to_agg += size as u64;
                            stats.bytes.source_to_agg_edges += 1;
                        }
                        Role::Aggregator => {
                            stats.bytes.agg_to_agg += size as u64;
                            stats.bytes.agg_to_agg_edges += 1;
                        }
                    }
                    stats.energy_tx += self.radio.tx_energy(size);
                    stats.energy_rx += self.radio.rx_energy(size);
                }
                None => {
                    // The sink transmits the final PSR to the querier.
                    stats.bytes.agg_to_querier += size as u64;
                    stats.energy_tx += self.radio.tx_energy(size);
                }
            }
            for _ in 0..copies {
                outputs[id].push(psr.clone());
            }
        }

        // Collect the final PSR at the root.
        let root = self.topology.root();
        let mut final_psr = match outputs[root].pop() {
            Some(p) => p,
            None => {
                return EpochOutcome {
                    result: Err(SchemeError::Malformed(
                        "no PSR reached the querier (all subtrees failed)".into(),
                    )),
                    stats,
                };
            }
        };

        // Replay attack: substitute the previous epoch's final PSR.
        if attacks.contains(&Attack::ReplayFinal) {
            if let Some(prev) = &self.prev_final {
                final_psr = prev.clone();
            }
        }
        self.prev_final = Some(final_psr.clone());

        let t0 = Instant::now();
        let result = self
            .scheme
            .evaluate(&final_psr, epoch, &stats.contributors);
        stats.querier_cpu = t0.elapsed();

        EpochOutcome { result, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transparent scheme for engine-level tests: the PSR is the plain
    /// sum plus a contribution count, so every engine behaviour is
    /// observable without cryptography.
    struct PlainSum;

    #[derive(Clone, Debug, PartialEq)]
    struct PlainPsr {
        sum: u64,
        count: u64,
    }

    impl AggregationScheme for PlainSum {
        type Psr = PlainPsr;

        fn name(&self) -> &'static str {
            "plain"
        }

        fn source_init(&self, _s: SourceId, _e: Epoch, value: u64) -> PlainPsr {
            PlainPsr { sum: value, count: 1 }
        }

        fn merge(&self, psrs: &[PlainPsr]) -> PlainPsr {
            PlainPsr {
                sum: psrs.iter().map(|p| p.sum).sum(),
                count: psrs.iter().map(|p| p.count).sum(),
            }
        }

        fn evaluate(
            &self,
            f: &PlainPsr,
            _epoch: Epoch,
            contributors: &[SourceId],
        ) -> Result<EvaluatedSum, SchemeError> {
            // "Verification": the number of fused PSRs must equal the
            // reported contributor count.
            if f.count != contributors.len() as u64 {
                return Err(SchemeError::VerificationFailed(format!(
                    "{} contributions, {} contributors",
                    f.count,
                    contributors.len()
                )));
            }
            Ok(EvaluatedSum { sum: f.sum as f64, integrity_checked: true })
        }

        fn psr_wire_size(&self, _p: &PlainPsr) -> usize {
            16
        }

        fn tamper(&self, psr: &mut PlainPsr) {
            psr.sum += 1_000_000;
        }
    }

    fn engine_fixture(n: u64, f: usize) -> (Topology, PlainSum) {
        (Topology::complete_tree(n, f), PlainSum)
    }

    #[test]
    fn clean_epoch_sums_exactly() {
        let (topo, scheme) = engine_fixture(16, 4);
        let mut engine = Engine::new(&scheme, &topo);
        let values: Vec<u64> = (1..=16).collect();
        let out = engine.run_epoch(0, &values);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 136.0);
        assert_eq!(out.stats.sources_run, 16);
        assert_eq!(out.stats.contributors.len(), 16);
    }

    #[test]
    fn byte_accounting_matches_topology() {
        let (topo, scheme) = engine_fixture(16, 4);
        let mut engine = Engine::new(&scheme, &topo);
        let out = engine.run_epoch(0, &[1; 16]);
        let b = out.stats.bytes;
        // 16 source edges, (4 aggregators → sink) agg edges, 1 querier edge.
        assert_eq!(b.source_to_agg_edges, 16);
        assert_eq!(b.source_to_agg, 16 * 16);
        assert_eq!(b.agg_to_agg_edges, 4);
        assert_eq!(b.agg_to_agg, 4 * 16);
        assert_eq!(b.agg_to_querier, 16);
        assert!((b.per_sa_edge() - 16.0).abs() < 1e-9);
        assert!((b.per_aa_edge() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn energy_accounting_positive_and_consistent() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let out = engine.run_epoch(0, &[1; 8]);
        assert!(out.stats.energy_tx > 0.0);
        assert!(out.stats.energy_rx > 0.0);
        // Every transmission except sink→querier is also received.
        assert!(out.stats.energy_tx > out.stats.energy_rx);
    }

    #[test]
    fn honest_source_failure_excluded_and_verifies() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(3).unwrap();
        let failed: HashSet<NodeId> = [node].into();
        let out = engine.run_epoch_with(0, &[10; 8], &failed, &[]);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 70.0);
        assert_eq!(out.stats.contributors.len(), 7);
        assert!(!out.stats.contributors.contains(&3));
    }

    #[test]
    fn honest_aggregator_failure_excludes_subtree() {
        let (topo, scheme) = engine_fixture(16, 4);
        let mut engine = Engine::new(&scheme, &topo);
        // Fail the first level-1 aggregator: 4 sources vanish.
        let agg = topo.node(topo.root()).children[0];
        let failed: HashSet<NodeId> = [agg].into();
        let out = engine.run_epoch_with(0, &[5; 16], &failed, &[]);
        let res = out.result.unwrap();
        assert_eq!(res.sum, 60.0);
        assert_eq!(out.stats.contributors.len(), 12);
    }

    #[test]
    fn covert_drop_detected_by_verifying_scheme() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(2).unwrap();
        let out = engine.run_epoch_with(0, &[1; 8], &HashSet::new(), &[Attack::DropAtNode(node)]);
        assert!(matches!(out.result, Err(SchemeError::VerificationFailed(_))));
    }

    #[test]
    fn covert_duplicate_detected() {
        let (topo, scheme) = engine_fixture(8, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(0).unwrap();
        let out =
            engine.run_epoch_with(0, &[1; 8], &HashSet::new(), &[Attack::DuplicateAtNode(node)]);
        assert!(out.result.is_err());
    }

    #[test]
    fn tamper_changes_result() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let node = topo.source_node(1).unwrap();
        let out =
            engine.run_epoch_with(0, &[1; 4], &HashSet::new(), &[Attack::TamperAtNode(node)]);
        // PlainSum's "verification" doesn't cover tampering with the sum,
        // so the attack slips through — exactly why SIES embeds shares.
        let res = out.result.unwrap();
        assert_eq!(res.sum, 1_000_004.0);
    }

    #[test]
    fn replay_uses_previous_epoch_final() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let first = engine.run_epoch(0, &[1; 4]).result.unwrap();
        assert_eq!(first.sum, 4.0);
        let replayed = engine
            .run_epoch_with(1, &[100; 4], &HashSet::new(), &[Attack::ReplayFinal])
            .result
            .unwrap();
        // PlainSum cannot detect it; the replayed sum is epoch 0's.
        assert_eq!(replayed.sum, 4.0);
    }

    #[test]
    fn total_network_failure_reported() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        let failed: HashSet<NodeId> = [topo.root()].into();
        let out = engine.run_epoch_with(0, &[1; 4], &failed, &[]);
        assert!(matches!(out.result, Err(SchemeError::Malformed(_))));
    }

    #[test]
    #[should_panic(expected = "one value per source")]
    fn wrong_value_count_panics() {
        let (topo, scheme) = engine_fixture(4, 2);
        let mut engine = Engine::new(&scheme, &topo);
        engine.run_epoch(0, &[1; 3]);
    }
}
