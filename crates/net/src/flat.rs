//! Struct-of-arrays aggregation-tree arena for million-sensor
//! populations.
//!
//! [`FlatTopology`] re-encodes a [`Topology`] into dense parallel
//! vectors: node ids are indices, every node's children occupy one
//! contiguous `(start, len)` range of a single child array, and the
//! post-order the epoch engine walks is precomputed once. The legacy
//! node numbering is preserved exactly, so the arena is a drop-in view:
//! every query (`post_order`, `repair_plan`, `backup_parent`,
//! `sources_under`) returns byte-identical answers to the pointer-based
//! `Vec<Node>` representation — a property the `flat_equivalence`
//! property tests pin down on random trees and random crash sets.
//!
//! Two layout facts carry the streamed epoch pipeline
//! (`crate::pipeline`):
//!
//! * **Subtree contiguity.** In the post-order array the subtree of any
//!   node `v` is the contiguous segment ending at `v`'s own position
//!   ([`subtree_range`](FlatTopology::subtree_range)). Whole subtrees of
//!   the sink's children can therefore be sharded across workers as
//!   plain slice ranges, each merged serially in exactly the order the
//!   serial engine would use.
//! * **Dense `u32` indices.** All per-node state is `u32`, so the arena
//!   costs ~40 bytes/node ([`bytes`](FlatTopology::bytes)) and a
//!   10⁶-sensor tree fits comfortably in cache-friendly flat storage.

use crate::topology::{NodeId, RepairPlan, Role, Topology};
use sies_core::SourceId;
use std::collections::HashSet;
use std::ops::Range;

/// Sentinel for "no node" in the `u32` arrays (the sink's parent).
const NO_NODE: u32 = u32::MAX;
/// Sentinel marking an aggregator in the `source_of` array.
const NOT_SOURCE: u32 = u32::MAX;

/// A [`Topology`] re-encoded as flat struct-of-arrays storage with the
/// engine's post-order precomputed. Node ids equal the legacy ids.
#[derive(Debug, Clone)]
pub struct FlatTopology {
    /// Parent of each node (`NO_NODE` for the sink).
    parent: Vec<u32>,
    /// Start of each node's child range in `children`.
    child_start: Vec<u32>,
    /// Length of each node's child range.
    child_len: Vec<u32>,
    /// All child lists, concatenated in node-id order.
    children: Vec<u32>,
    /// Hop distance from the sink.
    depth: Vec<u32>,
    /// Source id of each node, or `NOT_SOURCE` for aggregators.
    source_of: Vec<u32>,
    /// Node hosting each source id (O(1) lookup, vs the legacy O(N) scan).
    source_node: Vec<u32>,
    /// Post-order traversal, identical to [`Topology::post_order`].
    post: Vec<u32>,
    /// Position of each node in `post`.
    post_index: Vec<u32>,
    /// Nodes in the subtree rooted at each node (itself included).
    subtree_size: Vec<u32>,
    root: u32,
    num_sources: u64,
}

impl From<&Topology> for FlatTopology {
    fn from(topo: &Topology) -> Self {
        FlatTopology::from_topology(topo)
    }
}

impl FlatTopology {
    /// Flattens `topo`, preserving node ids, child order, and the exact
    /// post-order sequence of [`Topology::post_order`].
    pub fn from_topology(topo: &Topology) -> Self {
        let nodes = topo.nodes();
        let n = nodes.len();
        assert!(n < NO_NODE as usize, "node count exceeds u32 index space");

        let mut parent = Vec::with_capacity(n);
        let mut child_start = Vec::with_capacity(n);
        let mut child_len = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n.saturating_sub(1));
        let mut depth = Vec::with_capacity(n);
        let mut source_of = vec![NOT_SOURCE; n];
        let mut source_node = vec![NO_NODE; topo.num_sources() as usize];
        for node in nodes {
            parent.push(node.parent.map_or(NO_NODE, |p| p as u32));
            child_start.push(children.len() as u32);
            child_len.push(node.children.len() as u32);
            children.extend(node.children.iter().map(|&c| c as u32));
            depth.push(node.depth as u32);
            if let Role::Source(sid) = node.role {
                source_of[node.id] = sid;
                source_node[sid as usize] = node.id as u32;
            }
        }

        // Same traversal as the legacy `post_order` (children pushed in
        // order, popped in reverse), so the sequences are identical.
        let root = topo.root() as u32;
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(u32, bool)> = vec![(root, false)];
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                post.push(id);
            } else {
                stack.push((id, true));
                let s = child_start[id as usize] as usize;
                let l = child_len[id as usize] as usize;
                for &c in &children[s..s + l] {
                    stack.push((c, false));
                }
            }
        }

        let mut post_index = vec![0u32; n];
        for (i, &id) in post.iter().enumerate() {
            post_index[id as usize] = i as u32;
        }
        // Children precede parents in post-order, so one forward pass
        // accumulates subtree sizes bottom-up.
        let mut subtree_size = vec![0u32; n];
        for &id in &post {
            let s = child_start[id as usize] as usize;
            let l = child_len[id as usize] as usize;
            let mut size = 1u32;
            for &c in &children[s..s + l] {
                size += subtree_size[c as usize];
            }
            subtree_size[id as usize] = size;
        }

        FlatTopology {
            parent,
            child_start,
            child_len,
            children,
            depth,
            source_of,
            source_node,
            post,
            post_index,
            subtree_size,
            root,
            num_sources: topo.num_sources(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// The sink (root aggregator).
    pub fn root(&self) -> NodeId {
        self.root as usize
    }

    /// Number of source leaves.
    pub fn num_sources(&self) -> u64 {
        self.num_sources
    }

    /// Number of aggregator nodes.
    pub fn num_aggregators(&self) -> usize {
        self.num_nodes() - self.num_sources as usize
    }

    /// Parent node (`None` for the sink).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        match self.parent[id] {
            NO_NODE => None,
            p => Some(p as usize),
        }
    }

    /// This node's children as a dense slice (empty for sources).
    pub fn children(&self, id: NodeId) -> &[u32] {
        let s = self.child_start[id] as usize;
        s.checked_add(self.child_len[id] as usize)
            .map(|e| &self.children[s..e])
            .unwrap_or(&[])
    }

    /// Hop distance from the sink (sink = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.depth[id] as usize
    }

    /// The node's role, reconstructed from the arena.
    pub fn role(&self, id: NodeId) -> Role {
        match self.source_of[id] {
            NOT_SOURCE => Role::Aggregator,
            sid => Role::Source(sid as SourceId),
        }
    }

    /// True when `id` is a source leaf.
    pub fn is_source(&self, id: NodeId) -> bool {
        self.source_of[id] != NOT_SOURCE
    }

    /// The source id hosted at `id`, if it is a source.
    pub fn source_id(&self, id: NodeId) -> Option<SourceId> {
        match self.source_of[id] {
            NOT_SOURCE => None,
            sid => Some(sid as SourceId),
        }
    }

    /// The node hosting `source` — O(1), unlike the legacy linear scan.
    pub fn source_node(&self, source: SourceId) -> Option<NodeId> {
        match self.source_node.get(source as usize) {
            Some(&n) if n != NO_NODE => Some(n as usize),
            _ => None,
        }
    }

    /// The precomputed post-order traversal (children before parents),
    /// identical to [`Topology::post_order`] but allocation-free: the
    /// engine walks this cached slice every epoch.
    pub fn post_order(&self) -> &[u32] {
        &self.post
    }

    /// Position of `id` within [`post_order`](Self::post_order).
    pub fn post_position(&self, id: NodeId) -> usize {
        self.post_index[id] as usize
    }

    /// Nodes in the subtree rooted at `id` (itself included).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.subtree_size[id] as usize
    }

    /// The contiguous range of [`post_order`](Self::post_order) holding
    /// exactly the subtree rooted at `id` (the node itself is the last
    /// element). This contiguity is what lets the pipeline shard whole
    /// subtrees as slice ranges.
    pub fn subtree_range(&self, id: NodeId) -> Range<usize> {
        let end = self.post_index[id] as usize + 1;
        end - self.subtree_size[id] as usize..end
    }

    /// All source ids in the subtree rooted at `id`, sorted (matching
    /// [`Topology::sources_under`]).
    pub fn sources_under(&self, id: NodeId) -> Vec<SourceId> {
        let mut out: Vec<SourceId> = self.post[self.subtree_range(id)]
            .iter()
            .filter_map(|&n| self.source_id(n as usize))
            .collect();
        out.sort_unstable();
        out
    }

    /// The designated backup parent for `orphan` under `crashed`: the
    /// nearest live ancestor of the original parent (see
    /// [`Topology::backup_parent`]).
    pub fn backup_parent(&self, orphan: NodeId, crashed: &HashSet<NodeId>) -> Option<NodeId> {
        let mut candidate = self.parent(orphan);
        while let Some(id) = candidate {
            if !crashed.contains(&id) {
                return Some(id);
            }
            candidate = self.parent(id);
        }
        None
    }

    /// Plans within-epoch repair for `crashed` nodes, producing exactly
    /// the plan [`Topology::repair_plan`] would (same adoption map, same
    /// stranded order).
    pub fn repair_plan(&self, crashed: &HashSet<NodeId>) -> RepairPlan {
        let mut plan = RepairPlan::default();
        for id in 0..self.num_nodes() {
            if crashed.contains(&id) {
                continue;
            }
            let Some(parent) = self.parent(id) else {
                continue;
            };
            if !crashed.contains(&parent) {
                continue;
            }
            match self.backup_parent(id, crashed) {
                Some(backup) => {
                    plan.adoptions.insert(id, backup);
                }
                None => plan.stranded.push(id),
            }
        }
        plan
    }

    /// Heap bytes held by the arena — the numerator of the
    /// bytes-per-node budget the throughput artifact reports.
    pub fn bytes(&self) -> usize {
        use std::mem::size_of;
        (self.parent.capacity()
            + self.child_start.capacity()
            + self.child_len.capacity()
            + self.children.capacity()
            + self.depth.capacity()
            + self.source_of.capacity()
            + self.source_node.capacity()
            + self.post.capacity()
            + self.post_index.capacity()
            + self.subtree_size.capacity())
            * size_of::<u32>()
    }

    /// Checks the arena's structural invariants (parent/child symmetry,
    /// subtree contiguity, post-order completeness).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.post.len() != n {
            return Err(format!(
                "post-order covers {} of {} nodes",
                self.post.len(),
                n
            ));
        }
        for id in 0..n {
            for &c in self.children(id) {
                if self.parent(c as usize) != Some(id) {
                    return Err(format!("child {c} does not point back to {id}"));
                }
                let cr = self.subtree_range(c as usize);
                let pr = self.subtree_range(id);
                if cr.start < pr.start || cr.end > pr.end {
                    return Err(format!("subtree of {c} escapes its parent {id}'s range"));
                }
            }
            if self.is_source(id) && !self.children(id).is_empty() {
                return Err(format!("source node {id} has children"));
            }
            if self.post[self.post_index[id] as usize] as usize != id {
                return Err(format!("post_index broken at node {id}"));
            }
        }
        if self.subtree_size[self.root as usize] as usize != n {
            return Err("root subtree does not cover the tree".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn flatten(n: u64, f: usize) -> (Topology, FlatTopology) {
        let topo = Topology::complete_tree(n, f);
        let flat = FlatTopology::from_topology(&topo);
        (topo, flat)
    }

    #[test]
    fn mirrors_legacy_layout() {
        let (topo, flat) = flatten(64, 4);
        flat.validate().unwrap();
        assert_eq!(flat.num_nodes(), topo.nodes().len());
        assert_eq!(flat.root(), topo.root());
        assert_eq!(flat.num_sources(), topo.num_sources());
        assert_eq!(flat.num_aggregators(), topo.num_aggregators());
        for node in topo.nodes() {
            assert_eq!(flat.parent(node.id), node.parent);
            assert_eq!(flat.depth(node.id), node.depth);
            assert_eq!(flat.role(node.id), node.role);
            let kids: Vec<NodeId> = flat.children(node.id).iter().map(|&c| c as usize).collect();
            assert_eq!(kids, node.children);
        }
    }

    #[test]
    fn post_order_matches_legacy_exactly() {
        for (n, f) in [(1u64, 2usize), (10, 4), (64, 2), (1000, 4)] {
            let (topo, flat) = flatten(n, f);
            let flat_order: Vec<NodeId> = flat.post_order().iter().map(|&i| i as usize).collect();
            assert_eq!(flat_order, topo.post_order(), "n={n} f={f}");
        }
    }

    #[test]
    fn subtree_ranges_are_contiguous_subtrees() {
        let mut rng = StdRng::seed_from_u64(5);
        let topo = Topology::random_tree(&mut rng, 47, 5);
        let flat = FlatTopology::from_topology(&topo);
        flat.validate().unwrap();
        for id in 0..flat.num_nodes() {
            let seg = &flat.post_order()[flat.subtree_range(id)];
            assert_eq!(*seg.last().unwrap() as usize, id);
            let mut sources: Vec<SourceId> = seg
                .iter()
                .filter_map(|&n| flat.source_id(n as usize))
                .collect();
            sources.sort_unstable();
            assert_eq!(sources, topo.sources_under(id), "node {id}");
        }
    }

    #[test]
    fn source_node_is_constant_time_equivalent() {
        let (topo, flat) = flatten(33, 3);
        for s in 0..33u32 {
            assert_eq!(flat.source_node(s), topo.source_node(s));
        }
        assert_eq!(flat.source_node(999), None);
    }

    #[test]
    fn repair_plans_match_legacy() {
        let (topo, flat) = flatten(64, 4);
        let agg = topo.node(topo.root()).children[1];
        for crashed in [
            HashSet::new(),
            HashSet::from([agg]),
            HashSet::from([agg, topo.node(agg).children[0]]),
            HashSet::from([topo.root()]),
        ] {
            assert_eq!(flat.repair_plan(&crashed), topo.repair_plan(&crashed));
        }
    }

    #[test]
    fn arena_stays_under_byte_budget() {
        let (_, flat) = flatten(10_000, 4);
        let per_node = flat.bytes() as f64 / flat.num_nodes() as f64;
        assert!(per_node < 64.0, "arena costs {per_node:.1} B/node");
    }
}
