//! The querier's durable epoch-receipt journal: HMAC-signed records on
//! top of the zero-dep `sies-receipts` framing, plus the crash-restart
//! replay that rebuilds querier verification state.
//!
//! Division of labor: `sies-receipts` owns the on-disk format (framing,
//! CRC, torn-tail discipline) and stays free of crypto; this module
//! injects the cryptography and the SIES semantics — HMAC-SHA256 record
//! signatures under a per-session key, a μTesla broadcast chain whose
//! per-record disclosures pin the querier's authenticated-broadcast
//! position, and the digest fold that makes a replayed journal reproduce
//! the live chaos fingerprint byte for byte.
//!
//! The journal answers one question after a crash: *what had the querier
//! already verified?* Each receipt carries the epoch verdict, the exact
//! sum bits, the contributor set, the recovery-protocol counters, and
//! the μTesla chain position — everything [`replay`] needs to hand a
//! restarted querier its last verified epoch, its metric counters, and a
//! resumable broadcast-auth checkpoint, without trusting anything but
//! the session key.

use sies_core::mutesla::Broadcaster;
use sies_crypto::hmac::{ct_eq, hmac};
use sies_crypto::sha256::Sha256;
use sies_crypto::HashFunction;
use sies_receipts::{
    EpochReceipt, ReceiptError, Recorder, RecorderStats, ReplaySummary, Replayer, SessionHeader,
};
// Re-exported so downstream crates (the bench harness drives fsync-lag
// scenarios) can configure journals and build receipts without a
// sies-receipts dependency.
pub use sies_receipts::{EpochReceipt as Receipt, FsyncPolicy};
use sies_telemetry as tel;
use sies_telemetry::EventKind;
use std::path::Path;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything needed to create — or re-open after a crash — one
/// session's journal. The same config must be supplied on resume: the
/// HMAC key authenticates the records, and the μTesla seed regenerates
/// the broadcast chain (both are querier secrets that live outside the
/// journal, exactly like the SIES secret shares).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Session identifier written into the header and every receipt.
    pub session: u64,
    /// HMAC-SHA256 key signing every record.
    pub hmac_key: [u8; 32],
    /// Seed regenerating the querier's μTesla broadcast chain.
    pub mutesla_seed: u64,
    /// μTesla chain capacity: the maximum number of receipts the
    /// session can journal (one disclosed interval per receipt).
    pub capacity: u64,
    /// μTesla disclosure delay `d`.
    pub mutesla_delay: u64,
    /// Fsync cadence for the underlying recorder.
    pub fsync: FsyncPolicy,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            session: 1,
            hmac_key: [0x5E; 32],
            mutesla_seed: 1,
            capacity: 1 << 14,
            mutesla_delay: 1,
            fsync: FsyncPolicy::EveryEpoch,
        }
    }
}

impl JournalConfig {
    fn chain(&self) -> Broadcaster {
        let mut rng = StdRng::seed_from_u64(self.mutesla_seed);
        Broadcaster::new(&mut rng, self.capacity, self.mutesla_delay.max(1))
    }

    fn signer(&self) -> sies_receipts::Signer {
        let key = self.hmac_key;
        Box::new(move |payload: &[u8]| {
            hmac::<Sha256>(&key, payload)
                .try_into()
                .expect("SHA-256 output is 32 bytes")
        })
    }
}

/// What a successful [`replay`] hands the restarted querier.
#[derive(Clone)]
pub struct ReplayedState {
    /// The verified scan: header, every intact receipt, torn-tail
    /// evidence.
    pub summary: ReplaySummary,
    /// The first epoch the querier has no receipt for.
    pub next_epoch: u64,
    /// The replayed chaos-style result digest over all receipts — byte
    /// identical to what the live run had folded at the same point.
    pub digest: Sha256,
}

/// Folds one receipt into a chaos-style result digest. This is the
/// single definition of the fold: the live harness folds the receipt it
/// just built, replay folds the receipt it just read, so digest identity
/// across a crash-restart holds by construction.
pub fn fold_receipt(digest: &mut Sha256, r: &EpochReceipt) {
    digest.update(&r.epoch.to_le_bytes());
    match r.verdict.digest_tag() {
        1 => {
            digest.update(&[1, r.integrity_checked as u8]);
            digest.update(&r.sum_bits.to_le_bytes());
        }
        tag => digest.update(&[tag]),
    }
    digest.update(&[r.corrupted as u8]);
    digest.update(&(r.contributors.len() as u64).to_le_bytes());
    for &sid in &r.contributors {
        digest.update(&sid.to_le_bytes());
    }
}

/// Scans and authenticates the journal at `path`: every record's HMAC is
/// checked under `cfg.hmac_key`, the header must match the config's
/// session and μTesla commitment, and the newest receipt's chain
/// position must re-authenticate against the commitment (via
/// [`sies_core::mutesla::Receiver::resume`]). Returns the rebuilt
/// querier state.
pub fn replay(path: &Path, cfg: &JournalConfig) -> Result<ReplayedState, ReceiptError> {
    let key = cfg.hmac_key;
    let verify = move |payload: &[u8], sig: &[u8; 32]| ct_eq(&hmac::<Sha256>(&key, payload), sig);
    let summary = Replayer::scan_path(path, Some(&verify))?;

    if summary.header.session != cfg.session {
        return Err(ReceiptError::BadLayout {
            offset: 0,
            reason: "journal belongs to a different session",
        });
    }
    let chain = cfg.chain();
    if summary.header.mutesla_commitment != chain.commitment()
        || summary.header.mutesla_delay != chain.delay()
    {
        return Err(ReceiptError::BadLayout {
            offset: 0,
            reason: "journal's muTesla bootstrap does not match this config",
        });
    }
    // Re-authenticate the chain position the newest receipt claims: a
    // tampered (but somehow signed) or mis-stamped position must not
    // move a restarted receiver onto a different chain.
    if let Some((interval, chain_key)) = summary.mutesla_position() {
        sies_core::mutesla::Receiver::resume(
            chain.commitment(),
            chain.delay(),
            interval,
            chain_key,
        )
        .map_err(|_| ReceiptError::BadLayout {
            offset: 0,
            reason: "journaled muTesla position does not chain to the commitment",
        })?;
    }

    let mut digest = Sha256::new();
    for r in &summary.receipts {
        fold_receipt(&mut digest, r);
    }
    let next_epoch = summary.last_epoch().map_or(0, |e| e + 1);

    tel::count!("journal.replays");
    tel::count!("journal.replayed_receipts", summary.receipts.len() as u64);
    tel::count!(
        "journal.replay_torn_tails",
        summary.torn_tail.is_some() as u64
    );
    tel::event(
        next_epoch,
        EventKind::JournalReplayed,
        summary.receipts.len() as u64,
        summary.torn_tail.is_some() as u64,
    );

    Ok(ReplayedState {
        summary,
        next_epoch,
        digest,
    })
}

/// The querier-side journal: signs, stamps, and durably appends one
/// receipt per epoch.
pub struct ReceiptJournal {
    recorder: Recorder,
    session: u64,
    chain: Broadcaster,
    /// The μTesla interval the next receipt discloses (1-based; one
    /// interval per journaled receipt).
    next_interval: u64,
    capacity: u64,
    /// Recorder state at the last observed fsync, for the
    /// `journal.fsync_lag` gauge (records appended but not yet durable).
    fsyncs_seen: u64,
    records_at_last_fsync: u64,
}

impl ReceiptJournal {
    /// Creates (truncating) the session journal at `path`.
    pub fn create(path: &Path, cfg: &JournalConfig) -> std::io::Result<Self> {
        let chain = cfg.chain();
        let header = SessionHeader {
            session: cfg.session,
            mutesla_commitment: chain.commitment(),
            mutesla_delay: chain.delay(),
        };
        let recorder = Recorder::create(path, &header, cfg.fsync, Some(cfg.signer()))?;
        Ok(ReceiptJournal {
            recorder,
            session: cfg.session,
            chain,
            next_interval: 1,
            capacity: cfg.capacity,
            fsyncs_seen: 0,
            records_at_last_fsync: 0,
        })
    }

    /// Re-opens the journal after a crash: [`replay`]s (authenticating
    /// every surviving record), truncates a torn final record so the
    /// file ends on an intact frame, then resumes appending. Without the
    /// truncation the next append would land *after* the torn bytes,
    /// turning a tolerated tail into a hard mid-file corruption on the
    /// following replay. Returns the journal and the rebuilt state.
    pub fn resume(path: &Path, cfg: &JournalConfig) -> Result<(Self, ReplayedState), ReceiptError> {
        let state = replay(path, cfg)?;
        if let Some(tail) = &state.summary.torn_tail {
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(tail.offset)?;
        }
        let recorder = Recorder::resume(path, cfg.fsync, Some(cfg.signer()))?;
        let journal = ReceiptJournal {
            recorder,
            session: cfg.session,
            chain: cfg.chain(),
            next_interval: state.summary.receipts.len() as u64 + 1,
            capacity: cfg.capacity,
            fsyncs_seen: 0,
            records_at_last_fsync: 0,
        };
        Ok((journal, state))
    }

    /// The session id receipts are stamped with.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Recorder running totals (records, bytes, fsyncs, I/O errors).
    pub fn stats(&self) -> RecorderStats {
        self.recorder.stats()
    }

    /// Stamps `receipt` with the session id and the next μTesla chain
    /// disclosure, then appends and commits it (one write + policy
    /// fsync, off the epoch's data path). A journal whose chain is
    /// exhausted keeps recording with an unstamped (interval 0) receipt
    /// rather than failing the querier.
    pub fn record(&mut self, receipt: &mut EpochReceipt) {
        receipt.session = self.session;
        if self.next_interval <= self.capacity {
            let d = self.chain.disclose(self.next_interval);
            receipt.mutesla_interval = d.interval;
            receipt.mutesla_key = d.key;
            self.next_interval += 1;
        } else {
            receipt.mutesla_interval = 0;
            receipt.mutesla_key = [0u8; 32];
        }
        self.recorder.append(receipt);
        self.recorder.commit_epoch();
        let stats = self.recorder.stats();
        // Durability lag: receipts appended since the last fsync the
        // recorder performed. Under `FsyncPolicy::EveryEpoch` this stays
        // 0; a lazy policy lets it climb until the `fsync_lag` alert
        // rule fires.
        if stats.fsyncs != self.fsyncs_seen {
            self.fsyncs_seen = stats.fsyncs;
            self.records_at_last_fsync = stats.records;
        }
        tel::set_gauge!(
            "journal.fsync_lag",
            stats.records - self.records_at_last_fsync
        );
        tel::count!("journal.receipts");
        tel::event(
            receipt.epoch,
            EventKind::ReceiptCommitted,
            stats.records,
            stats.bytes_written,
        );
    }

    /// End-of-run barrier: forces any buffered frames and a final fsync,
    /// then flushes the recorder totals into the telemetry registry.
    pub fn finish(&mut self) -> std::io::Result<()> {
        let res = self.recorder.sync();
        let stats = self.recorder.stats();
        tel::count!("journal.commits", stats.commits);
        tel::count!("journal.bytes_written", stats.bytes_written);
        tel::count!("journal.fsyncs", stats.fsyncs);
        tel::count!("journal.io_errors", stats.io_errors);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sies_receipts::Verdict;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sies-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn receipt(epoch: u64) -> EpochReceipt {
        EpochReceipt {
            epoch,
            verdict: Verdict::Accepted,
            integrity_checked: true,
            sum_bits: (epoch as f64 * 3.0).to_bits(),
            contributors: vec![0, 1, 2],
            ..EpochReceipt::default()
        }
    }

    #[test]
    fn create_record_replay_round_trips() {
        let path = tmp("round.journal");
        let cfg = JournalConfig::default();
        let mut j = ReceiptJournal::create(&path, &cfg).unwrap();
        let mut live = Sha256::new();
        for e in 0..5 {
            let mut r = receipt(e);
            j.record(&mut r);
            assert_eq!(r.session, cfg.session);
            assert_eq!(r.mutesla_interval, e + 1);
            fold_receipt(&mut live, &r);
        }
        j.finish().unwrap();

        let state = replay(&path, &cfg).unwrap();
        assert_eq!(state.summary.receipts.len(), 5);
        assert_eq!(state.next_epoch, 5);
        assert!(state.summary.torn_tail.is_none());
        assert_eq!(
            state.digest.finalize(),
            live.finalize(),
            "replayed digest must equal the live fold"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_key_or_session_is_rejected() {
        let path = tmp("wrongkey.journal");
        let cfg = JournalConfig::default();
        let mut j = ReceiptJournal::create(&path, &cfg).unwrap();
        j.record(&mut receipt(0));
        j.finish().unwrap();

        let wrong_key = JournalConfig {
            hmac_key: [0xFF; 32],
            ..cfg.clone()
        };
        assert!(matches!(
            replay(&path, &wrong_key),
            Err(ReceiptError::BadSignature { .. })
        ));
        let wrong_session = JournalConfig {
            session: 999,
            ..cfg.clone()
        };
        assert!(matches!(
            replay(&path, &wrong_session),
            Err(ReceiptError::BadLayout { .. })
        ));
        // A different muTesla seed means a different commitment: the
        // header check refuses to resume onto the wrong chain.
        let wrong_chain = JournalConfig {
            mutesla_seed: 777,
            ..cfg
        };
        assert!(matches!(
            replay(&path, &wrong_chain),
            Err(ReceiptError::BadLayout { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_continues_the_chain_and_the_file() {
        let path = tmp("resume.journal");
        let cfg = JournalConfig::default();
        let mut j = ReceiptJournal::create(&path, &cfg).unwrap();
        for e in 0..3 {
            j.record(&mut receipt(e));
        }
        drop(j);

        let (mut j, state) = ReceiptJournal::resume(&path, &cfg).unwrap();
        assert_eq!(state.next_epoch, 3);
        let mut r = receipt(3);
        j.record(&mut r);
        assert_eq!(
            r.mutesla_interval, 4,
            "chain position continues across restart"
        );
        j.finish().unwrap();

        let state = replay(&path, &cfg).unwrap();
        assert_eq!(state.summary.receipts.len(), 4);
        assert_eq!(state.summary.mutesla_position().unwrap().0, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_truncates_a_torn_tail_and_keeps_appending() {
        let path = tmp("torn-resume.journal");
        let cfg = JournalConfig::default();
        let mut j = ReceiptJournal::create(&path, &cfg).unwrap();
        for e in 0..3 {
            j.record(&mut receipt(e));
        }
        drop(j);

        // Tear the final record mid-write: chop 5 bytes off the file.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let (mut j, state) = ReceiptJournal::resume(&path, &cfg).unwrap();
        assert_eq!(state.summary.receipts.len(), 2, "torn receipt is gone");
        assert!(state.summary.torn_tail.is_some());
        assert_eq!(state.next_epoch, 2);
        // The torn epoch is re-recorded; its μTesla interval is re-used
        // (disclosure is deterministic), and the file ends intact again.
        let mut r = receipt(2);
        j.record(&mut r);
        assert_eq!(r.mutesla_interval, 3);
        j.finish().unwrap();

        let state = replay(&path, &cfg).unwrap();
        assert_eq!(state.summary.receipts.len(), 3);
        assert!(
            state.summary.torn_tail.is_none(),
            "tail must have been truncated before the new append"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exhausted_chain_degrades_to_unstamped_receipts() {
        let path = tmp("exhausted.journal");
        let cfg = JournalConfig {
            capacity: 2,
            ..JournalConfig::default()
        };
        let mut j = ReceiptJournal::create(&path, &cfg).unwrap();
        for e in 0..4 {
            j.record(&mut receipt(e));
        }
        j.finish().unwrap();
        let state = replay(&path, &cfg).unwrap();
        assert_eq!(state.summary.receipts.len(), 4);
        // Newest *stamped* position is interval 2.
        assert_eq!(state.summary.mutesla_position().unwrap().0, 2);
        std::fs::remove_file(&path).unwrap();
    }
}
