//! The [`AggregationScheme`] abstraction: the three in-network phases
//! (initialization `I`, merging `M`, evaluation `E` — paper §III-A) as a
//! trait, so the same epoch engine, adversary harness, and accounting run
//! SIES and both baselines.

use sies_core::{Epoch, SourceId};

/// Why an evaluation was rejected (or, for non-verifying schemes like CMT,
/// why it *would* have been).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// Integrity/freshness verification failed.
    VerificationFailed(String),
    /// The scheme received malformed inputs.
    Malformed(String),
}

impl core::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SchemeError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
            SchemeError::Malformed(m) => write!(f, "malformed input: {m}"),
        }
    }
}

impl std::error::Error for SchemeError {}

/// An evaluated (and, where the scheme supports it, verified) SUM result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvaluatedSum {
    /// The SUM value reported to the querier. Exact for SIES and CMT;
    /// approximate (`2^x̄`) for SECOA.
    pub sum: f64,
    /// Whether the scheme cryptographically verified integrity and
    /// freshness (true for SIES and SECOA; false for CMT, which cannot).
    pub integrity_checked: bool,
}

/// A deployed secure in-network aggregation scheme covering all `N`
/// sources. Implementors carry the key material for every party, because
/// the epoch engine plays all roles in-process.
///
/// Schemes are `Sync` (all implementors are plain owned key material) so
/// the engine can shard an epoch's source population across scoped
/// workers that share `&self`; PSRs are `Send` so the per-shard results
/// can flow back to the merging thread.
pub trait AggregationScheme: Sync {
    /// The partial state record flowing along edges.
    type Psr: Clone + Send;

    /// Scheme name for reports ("SIES", "CMT", "SECOAS").
    fn name(&self) -> &'static str;

    /// Initialization phase `I` at source `source`: encode + encrypt the
    /// epoch's value into a PSR.
    fn source_init(&self, source: SourceId, epoch: Epoch, value: u64) -> Self::Psr;

    /// Fallible variant of [`source_init`](Self::source_init). The engine
    /// calls this one, so schemes whose initialization can reject inputs
    /// (e.g. an out-of-range reading under a narrow result width) surface
    /// a [`SchemeError`] instead of panicking mid-epoch. The default
    /// delegates to the infallible method.
    fn try_source_init(
        &self,
        source: SourceId,
        epoch: Epoch,
        value: u64,
    ) -> Result<Self::Psr, SchemeError> {
        Ok(self.source_init(source, epoch, value))
    }

    /// Batched initialization over one shard of an epoch's job list:
    /// returns one result per `(source, value)` pair, in input order,
    /// element-wise equal to calling
    /// [`try_source_init`](Self::try_source_init) in a loop (which is
    /// exactly what the default does).
    ///
    /// Schemes override this to hoist epoch-shared work out of the
    /// per-source loop — SIES derives `K_t` and builds its Montgomery
    /// context once per shard. The engine hands each scoped worker one
    /// contiguous chunk of the epoch's jobs through this hook.
    fn batch_source_init(
        &self,
        epoch: Epoch,
        jobs: &[(SourceId, u64)],
    ) -> Vec<Result<Self::Psr, SchemeError>> {
        jobs.iter()
            .map(|&(source, value)| self.try_source_init(source, epoch, value))
            .collect()
    }

    /// Allocation-aware variant of
    /// [`batch_source_init`](Self::batch_source_init): writes the results
    /// into `out` (cleared first, capacity retained) instead of returning
    /// a fresh vector. The streamed epoch pipeline calls this every epoch
    /// with a reused buffer, so once `out` has grown to the shard size the
    /// default implementation allocates nothing in steady state.
    ///
    /// Must leave `out` element-wise equal to what
    /// [`batch_source_init`](Self::batch_source_init) returns for the
    /// same jobs. Schemes whose batched path inherently allocates (SIES'
    /// lane-batched kernels build intermediate vectors) may still
    /// override this for the epoch-shared-work hoist; the buffer then
    /// only saves the outer allocation.
    fn batch_source_init_into(
        &self,
        epoch: Epoch,
        jobs: &[(SourceId, u64)],
        out: &mut Vec<Result<Self::Psr, SchemeError>>,
    ) {
        out.clear();
        out.reserve(jobs.len());
        for &(source, value) in jobs {
            out.push(self.try_source_init(source, epoch, value));
        }
    }

    /// Whether this scheme can precompute upcoming epochs' key material
    /// during idle gaps. When `true`, epoch drivers (the streamed
    /// pipeline) pace a background warmer that calls
    /// [`prewarm_epoch`](Self::prewarm_epoch) ahead of the engine's
    /// watermark. Default: `false` (no prewarm support).
    fn prewarm_enabled(&self) -> bool {
        false
    }

    /// Precompute-ahead hook: derive and pool `epoch`'s key material so
    /// a later [`batch_source_init`](Self::batch_source_init) for the
    /// same epoch skips the derivation. MUST NOT change any observable
    /// result — pooled material has to reproduce the on-demand path
    /// bit-for-bit, making this purely a latency optimization. Default:
    /// no-op.
    fn prewarm_epoch(&self, _epoch: Epoch) {}

    /// The epochs a warmer thread should derive next (ascending), given
    /// the last epoch the driver finished. Default: none.
    fn prewarm_plan(&self, _watermark: Epoch) -> Vec<Epoch> {
        Vec::new()
    }

    /// Drops precomputed state at or below the engine's progress
    /// `watermark` (those epochs already ran). Default: no-op.
    fn prewarm_retire(&self, _watermark: Epoch) {}

    /// Cancels all pending precomputed state — called when the world
    /// changes under the pool (topology repair re-planning upcoming
    /// epochs). Safe to call at any time because correctness never
    /// depends on pool contents. Default: no-op.
    fn prewarm_cancel(&self) {}

    /// Merging phase `M` at an aggregator: fuse children's PSRs.
    /// `psrs` is non-empty.
    fn merge(&self, psrs: &[Self::Psr]) -> Self::Psr;

    /// Fallible variant of [`merge`](Self::merge); the engine calls this
    /// one so malformed or empty input sets become a [`SchemeError`]
    /// rather than a panic. The default delegates to the infallible
    /// method after rejecting the empty case every scheme shares.
    fn try_merge(&self, psrs: &[Self::Psr]) -> Result<Self::Psr, SchemeError> {
        if psrs.is_empty() {
            return Err(SchemeError::Malformed("merge called with no inputs".into()));
        }
        Ok(self.merge(psrs))
    }

    /// Evaluation phase `E` at the querier. `contributors` lists the
    /// sources whose PSRs reached the sink (paper §IV-B Discussion).
    fn evaluate(
        &self,
        final_psr: &Self::Psr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<EvaluatedSum, SchemeError>;

    /// Evaluation phase sharded over `threads` workers. Must return
    /// exactly what [`evaluate`](Self::evaluate) returns for every thread
    /// count — the default simply delegates; SIES overrides it to split
    /// the per-contributor key/share recomputation across workers.
    fn evaluate_par(
        &self,
        final_psr: &Self::Psr,
        epoch: Epoch,
        contributors: &[SourceId],
        threads: usize,
    ) -> Result<EvaluatedSum, SchemeError> {
        let _ = threads;
        self.evaluate(final_psr, epoch, contributors)
    }

    /// Extra processing at the sink (root aggregator) before the PSR is
    /// sent to the querier. Identity for SIES and CMT; SECOA folds SEALs
    /// that sit at the same chain position to shrink the
    /// aggregator→querier message (paper §II-D).
    fn sink_finalize(&self, psr: Self::Psr) -> Self::Psr {
        psr
    }

    /// Wire size of a PSR in bytes — drives the per-edge communication
    /// accounting (paper Table V).
    fn psr_wire_size(&self, psr: &Self::Psr) -> usize;

    /// An in-flight adversarial modification of a PSR (used by the attack
    /// harness). Each scheme defines its own notion of "tamper": SIES/CMT
    /// add a constant to the ciphertext; SECOA inflates a sketch.
    fn tamper(&self, psr: &mut Self::Psr);
}
