#![warn(missing_docs)]

//! # sies-net
//!
//! The sensor-network substrate for the SIES reproduction: aggregation
//! trees (paper §III-A), an epoch-driven engine that plays all roles
//! in-process with CPU/byte/energy accounting, honest node-failure
//! handling, and a covert-attack harness.
//!
//! The [`scheme::AggregationScheme`] trait captures the three in-network
//! phases, so SIES ([`deploy::SiesDeployment`]) and the baselines from
//! `sies-baselines` all run under the same engine and are measured
//! identically — the setup the paper's §VI experiments need.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sies_core::SystemParams;
//! use sies_net::deploy::SiesDeployment;
//! use sies_net::engine::Engine;
//! use sies_net::topology::Topology;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let deployment = SiesDeployment::new(&mut rng, SystemParams::new(16).unwrap());
//! let topology = Topology::complete_tree(16, 4);
//! let mut engine = Engine::new(&deployment, &topology);
//! let outcome = engine.run_epoch(0, &[3; 16]);
//! assert_eq!(outcome.result.unwrap().sum, 48.0);
//! ```

pub mod chaos;
pub mod deploy;
pub mod energy;
pub mod engine;
pub mod flat;
pub mod journal;
pub mod pipeline;
pub mod prewarm;
pub mod query_engine;
pub mod radio;
pub mod recovery;
pub mod scheme;
pub mod topology;
pub mod wire;

pub use chaos::{
    absorb, run_chaos, run_chaos_with_restarts, ChaosConfig, ChaosMetrics, RestartConfig,
    RestartOutcome,
};
pub use deploy::SiesDeployment;
pub use energy::RadioModel;
pub use engine::{Attack, EdgeBytes, Engine, EpochOutcome, EpochStats, RecoveredEpoch};
pub use flat::FlatTopology;
pub use journal::{fold_receipt, replay, JournalConfig, ReceiptJournal, ReplayedState};
pub use pipeline::{EpochPipeline, EpochReport};
pub use prewarm::{PrewarmPolicy, PrewarmPool, PrewarmStats};
pub use query_engine::{QueryEngine, QueryOutcome};
pub use recovery::{BackoffConfig, RecoveryConfig, RecoveryReport, UplinkOutcome, UplinkTally};
pub use scheme::{AggregationScheme, EvaluatedSum, SchemeError};
pub use sies_core::Threads;
pub use topology::{Node, NodeId, RepairPlan, Role, Topology};
