//! Lossy-link radio model: per-hop packet loss with bounded
//! retransmission, producing the honest-failure sets the engine consumes
//! and the retransmission overhead factors for bandwidth/energy.
//!
//! The paper treats topology maintenance and link reliability as
//! orthogonal (§III-A), but its failure-handling discussion (§IV-B)
//! assumes *some* mechanism decides which sources contributed. This
//! module provides that mechanism for experiments: a node whose uplink
//! fails `1 + max_retries` times in an epoch loses its whole subtree for
//! that epoch, and the querier is informed (the engine then verifies
//! against the surviving contributor set).

use crate::topology::{NodeId, Topology};
use rand::Rng;
use rand::RngCore;
use sies_telemetry as tel;
use std::collections::HashSet;

/// A lossy link layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossyRadio {
    /// Probability that one transmission attempt is lost, in `[0, 1]`.
    pub loss_rate: f64,
    /// Retransmissions allowed after the first attempt.
    pub max_retries: u32,
}

impl Default for LossyRadio {
    fn default() -> Self {
        LossyRadio {
            loss_rate: 0.05,
            max_retries: 3,
        }
    }
}

/// Transmission accounting for one epoch under loss.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkStats {
    /// Uplinks that failed permanently this epoch.
    pub failed_links: u64,
    /// Total transmission attempts across all uplinks.
    pub attempts: u64,
    /// Uplinks that needed at least one retransmission.
    pub retransmitted_links: u64,
}

impl LinkStats {
    /// Mean attempts per link (the bandwidth/energy inflation factor
    /// retransmissions cause).
    pub fn attempts_per_link(&self, links: u64) -> f64 {
        if links == 0 {
            0.0
        } else {
            self.attempts as f64 / links as f64
        }
    }
}

impl LossyRadio {
    /// Creates a radio with validation.
    pub fn new(loss_rate: f64, max_retries: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate must be in [0,1]"
        );
        LossyRadio {
            loss_rate,
            max_retries,
        }
    }

    /// Probability an uplink fails permanently (every attempt lost).
    pub fn link_failure_probability(&self) -> f64 {
        self.loss_rate.powi(self.max_retries as i32 + 1)
    }

    /// Samples one epoch of link outcomes over a topology: returns the set
    /// of nodes whose uplink failed permanently (the engine treats them as
    /// honest failures) plus attempt accounting.
    ///
    /// Every non-root node has one uplink. Descendant links of a failed
    /// node still count their attempts — the subtree transmitted before
    /// the loss happened upstream.
    pub fn epoch_outcome(
        &self,
        rng: &mut dyn RngCore,
        topology: &Topology,
    ) -> (HashSet<NodeId>, LinkStats) {
        let mut failed = HashSet::new();
        let mut stats = LinkStats::default();
        for node in topology.nodes() {
            if node.parent.is_none() {
                continue;
            }
            let mut delivered = false;
            let mut attempts_here = 0u64;
            for _ in 0..=self.max_retries {
                attempts_here += 1;
                if rng.random_range(0.0..1.0) >= self.loss_rate {
                    delivered = true;
                    break;
                }
            }
            stats.attempts += attempts_here;
            if attempts_here > 1 {
                stats.retransmitted_links += 1;
            }
            if !delivered {
                stats.failed_links += 1;
                failed.insert(node.id);
            }
        }
        tel::count!("radio.link_attempts", stats.attempts);
        tel::count!("radio.links_failed", stats.failed_links);
        tel::count!("radio.links_retransmitted", stats.retransmitted_links);
        (failed, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        Topology::complete_tree(64, 4)
    }

    #[test]
    fn lossless_radio_never_fails() {
        let radio = LossyRadio::new(0.0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let (failed, stats) = radio.epoch_outcome(&mut rng, &topo());
        assert!(failed.is_empty());
        assert_eq!(stats.failed_links, 0);
        assert_eq!(stats.retransmitted_links, 0);
        // One attempt per non-root node.
        let links = topo().nodes().len() as u64 - 1;
        assert_eq!(stats.attempts, links);
    }

    #[test]
    fn total_loss_fails_everything() {
        let radio = LossyRadio::new(1.0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let t = topo();
        let (failed, stats) = radio.epoch_outcome(&mut rng, &t);
        let links = t.nodes().len() as u64 - 1;
        assert_eq!(failed.len() as u64, links);
        assert_eq!(stats.attempts, links * 3);
    }

    #[test]
    fn retries_reduce_failures() {
        let t = topo();
        let mut fail_counts = Vec::new();
        for retries in [0u32, 2, 5] {
            let radio = LossyRadio::new(0.3, retries);
            let mut rng = StdRng::seed_from_u64(3);
            let mut total = 0u64;
            for _ in 0..50 {
                total += radio.epoch_outcome(&mut rng, &t).1.failed_links;
            }
            fail_counts.push(total);
        }
        assert!(fail_counts[0] > fail_counts[1]);
        assert!(fail_counts[1] > fail_counts[2]);
    }

    #[test]
    fn failure_probability_formula() {
        let radio = LossyRadio::new(0.1, 2);
        assert!((radio.link_failure_probability() - 0.001).abs() < 1e-12);
        assert_eq!(LossyRadio::new(0.0, 5).link_failure_probability(), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let radio = LossyRadio::new(0.2, 1);
        let t = topo();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(
            radio.epoch_outcome(&mut a, &t),
            radio.epoch_outcome(&mut b, &t)
        );
    }

    #[test]
    fn sies_survives_a_lossy_epoch() {
        // End-to-end: sample losses, feed the failure set to the engine,
        // and verify against the surviving contributors.
        use crate::engine::Engine;
        use crate::SiesDeployment;
        use sies_core::SystemParams;
        let mut rng = StdRng::seed_from_u64(11);
        let t = topo();
        let dep = SiesDeployment::new(&mut rng, SystemParams::new(64).unwrap());
        let radio = LossyRadio::new(0.25, 0); // harsh: ~25% links die
        let (failed, _) = radio.epoch_outcome(&mut rng, &t);
        assert!(!failed.is_empty(), "expected some failures at 25% loss");
        let mut engine = Engine::new(&dep, &t);
        let out = engine.run_epoch_with(0, &[10; 64], &failed, &[]);
        match out.result {
            Ok(res) => {
                assert_eq!(res.sum as u64, 10 * out.stats.contributors.len() as u64);
            }
            // Permissible only when no PSR reached the querier at all
            // (the whole network below the sink failed).
            Err(e) => assert!(
                format!("{e}").contains("no PSR"),
                "unexpected failure under honest losses: {e}"
            ),
        }
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn invalid_loss_rate_rejected() {
        LossyRadio::new(1.5, 0);
    }

    #[test]
    fn attempts_per_link_math() {
        let stats = LinkStats {
            failed_links: 0,
            attempts: 150,
            retransmitted_links: 30,
        };
        assert!((stats.attempts_per_link(100) - 1.5).abs() < 1e-12);
        assert_eq!(LinkStats::default().attempts_per_link(0), 0.0);
    }
}
