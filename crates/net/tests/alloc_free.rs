//! Counting-allocator oracle for the streamed epoch pipeline: after a
//! warm-up, a `threads = 1` run performs **zero** heap allocations per
//! epoch at N = 10 000, in both streaming modes.
//!
//! The test swaps in a global allocator that counts `alloc`/`realloc`
//! calls and compares runs of different epoch counts: any per-epoch
//! allocation would make the longer run strictly more expensive. The
//! non-streaming path is additionally held to *zero* allocations for the
//! whole run, not just per epoch.

use sies_net::pipeline::EpochPipeline;
use sies_net::scheme::{AggregationScheme, EvaluatedSum, SchemeError};
use sies_net::{FlatTopology, Threads, Topology};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System` plus a relaxed counter of allocation events (alloc +
/// realloc; frees are irrelevant to the steady-state claim).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A trivial `Copy`-PSR scheme so the oracle measures the pipeline's own
/// allocations, not a scheme's internal batching.
struct PlainSum;

#[derive(Clone, Copy, Debug, PartialEq)]
struct PlainPsr {
    sum: u64,
    count: u64,
}

impl AggregationScheme for PlainSum {
    type Psr = PlainPsr;

    fn name(&self) -> &'static str {
        "PLAIN"
    }

    fn source_init(&self, _source: u32, _epoch: u64, value: u64) -> PlainPsr {
        PlainPsr {
            sum: value,
            count: 1,
        }
    }

    fn merge(&self, psrs: &[PlainPsr]) -> PlainPsr {
        PlainPsr {
            sum: psrs.iter().map(|p| p.sum).sum(),
            count: psrs.iter().map(|p| p.count).sum(),
        }
    }

    fn evaluate(
        &self,
        final_psr: &PlainPsr,
        _epoch: u64,
        contributors: &[u32],
    ) -> Result<EvaluatedSum, SchemeError> {
        if final_psr.count != contributors.len() as u64 {
            return Err(SchemeError::VerificationFailed("count mismatch".into()));
        }
        Ok(EvaluatedSum {
            sum: final_psr.sum as f64,
            integrity_checked: true,
        })
    }

    fn psr_wire_size(&self, _psr: &PlainPsr) -> usize {
        16
    }

    fn tamper(&self, psr: &mut PlainPsr) {
        psr.sum += 1;
    }
}

/// Runs `epochs` epochs on a warm pipeline and returns how many
/// allocation events the run performed.
fn allocs_for_run(pipeline: &mut EpochPipeline<'_, PlainSum>, first: u64, epochs: u64) -> u64 {
    let mut checksum = 0u64;
    let before = allocs();
    pipeline.run(
        first,
        epochs,
        |epoch, values| {
            for (i, v) in values.iter_mut().enumerate() {
                *v = (epoch.wrapping_mul(31) ^ i as u64) & 0xFFF;
            }
        },
        |report, _, result, _| {
            checksum ^= report.epoch ^ result.as_ref().unwrap().sum.to_bits();
        },
    );
    let delta = allocs() - before;
    assert_ne!(checksum, u64::MAX, "keep the work observable");
    delta
}

#[test]
fn steady_state_epochs_allocate_nothing() {
    // Telemetry spans/gauges would allocate on first touch of each
    // metric; the claim under test is the pipeline's, so switch them off
    // exactly like a headless deployment would (SIES_TELEMETRY=off).
    sies_telemetry::set_enabled(false);

    let topo = Topology::complete_tree(10_000, 4);
    let flat = FlatTopology::from_topology(&topo);

    // --- Non-streaming, threads = 1: strictly zero after warm-up. ---
    let mut pipeline = EpochPipeline::new(&PlainSum, &flat, Threads::fixed(1), false);
    allocs_for_run(&mut pipeline, 0, 3); // warm-up grows every buffer
    let steady = allocs_for_run(&mut pipeline, 3, 5);
    assert_eq!(
        steady, 0,
        "non-streaming serial pipeline must not allocate at all once warm"
    );

    // --- Streaming: the scoped producer thread is one fixed per-run
    // cost, so compare two warm runs of different lengths — any
    // per-epoch allocation would separate them. ---
    let mut streaming = EpochPipeline::new(&PlainSum, &flat, Threads::fixed(1), true);
    allocs_for_run(&mut streaming, 0, 3); // warm-up
    let short = allocs_for_run(&mut streaming, 3, 4);
    let long = allocs_for_run(&mut streaming, 7, 24);
    assert_eq!(
        short, long,
        "streaming pipeline allocated per epoch: {short} allocs over 4 epochs \
         vs {long} over 24"
    );

    sies_telemetry::clear_enabled();
}
