//! Property-based equivalence oracle: [`FlatTopology`] must be an exact
//! drop-in for the legacy pointer-tree `Topology` on random irregular
//! trees — same post-order, same per-node metadata, same repair plans
//! under random crash sets — and the struct-of-arrays
//! [`EpochPipeline`] must produce byte-identical epoch outcomes to the
//! legacy [`Engine`] at every thread count and streaming mode.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_net::engine::Engine;
use sies_net::pipeline::EpochPipeline;
use sies_net::scheme::{AggregationScheme, EvaluatedSum, SchemeError};
use sies_net::{FlatTopology, NodeId, Threads, Topology};
use std::collections::HashSet;

/// A cheap transparent scheme whose PSR preserves merge structure
/// (weighted sum + count), so any reordering or regrouping of merge
/// inputs that slipped through would still be caught by the sum even
/// though SUM itself is commutative: positions weight the values.
struct WeightedSum;

#[derive(Clone, Copy, Debug, PartialEq)]
struct WPsr {
    sum: u64,
    count: u64,
    /// Order-sensitive fingerprint: each merge hashes its inputs in
    /// sequence, so child-order mistakes change this even when `sum`
    /// stays the same.
    fingerprint: u64,
}

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29)
}

impl AggregationScheme for WeightedSum {
    type Psr = WPsr;

    fn name(&self) -> &'static str {
        "WSUM"
    }

    fn source_init(&self, source: u32, epoch: u64, value: u64) -> WPsr {
        WPsr {
            sum: value,
            count: 1,
            fingerprint: mix(mix(epoch, source as u64), value),
        }
    }

    fn merge(&self, psrs: &[WPsr]) -> WPsr {
        let mut fingerprint = 0xA5A5_A5A5u64;
        for p in psrs {
            fingerprint = mix(fingerprint, p.fingerprint);
        }
        WPsr {
            sum: psrs.iter().map(|p| p.sum).sum(),
            count: psrs.iter().map(|p| p.count).sum(),
            fingerprint,
        }
    }

    fn evaluate(
        &self,
        final_psr: &WPsr,
        _epoch: u64,
        contributors: &[u32],
    ) -> Result<EvaluatedSum, SchemeError> {
        if final_psr.count != contributors.len() as u64 {
            return Err(SchemeError::VerificationFailed("count mismatch".into()));
        }
        Ok(EvaluatedSum {
            sum: final_psr.sum as f64,
            integrity_checked: true,
        })
    }

    fn psr_wire_size(&self, _psr: &WPsr) -> usize {
        24
    }

    fn tamper(&self, psr: &mut WPsr) {
        psr.sum += 1;
    }
}

fn random_topology(seed: u64, n: u64, fanout: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    Topology::random_tree(&mut rng, n, fanout)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arena_mirrors_legacy_on_random_trees(
        seed in any::<u64>(),
        n in 1u64..120,
        fanout in 2usize..7,
    ) {
        let topo = random_topology(seed, n, fanout);
        let flat = FlatTopology::from_topology(&topo);
        flat.validate().expect("arena invariants");

        prop_assert_eq!(flat.num_nodes(), topo.nodes().len());
        prop_assert_eq!(flat.root(), topo.root());
        prop_assert_eq!(flat.num_sources(), n);

        let legacy_post = topo.post_order();
        let flat_post: Vec<NodeId> =
            flat.post_order().iter().map(|&id| id as NodeId).collect();
        prop_assert_eq!(&flat_post, &legacy_post);

        for id in 0..topo.nodes().len() {
            let node = topo.node(id);
            prop_assert_eq!(flat.parent(id), node.parent);
            prop_assert_eq!(flat.depth(id), node.depth);
            prop_assert_eq!(flat.role(id), node.role);
            let kids: Vec<NodeId> =
                flat.children(id).iter().map(|&c| c as NodeId).collect();
            prop_assert_eq!(&kids, &node.children);
            prop_assert_eq!(flat.sources_under(id), topo.sources_under(id));
            // Subtree contiguity: the flat range holds exactly the
            // post-order positions of the legacy subtree.
            let range = flat.subtree_range(id);
            prop_assert_eq!(range.len(), flat.subtree_size(id));
            prop_assert_eq!(*flat_post[range.clone()].last().unwrap(), id);
        }
    }

    #[test]
    fn repair_plans_match_on_random_crash_sets(
        seed in any::<u64>(),
        n in 1u64..80,
        fanout in 2usize..6,
        crash_bits in any::<u64>(),
    ) {
        let topo = random_topology(seed, n, fanout);
        let flat = FlatTopology::from_topology(&topo);
        // Derive a pseudo-random crash set from the bits; the sink may
        // crash too (the stranded branch).
        let crashed: HashSet<NodeId> = (0..topo.nodes().len())
            .filter(|id| (crash_bits >> (id % 64)) & 1 == 1)
            .collect();
        prop_assert_eq!(flat.repair_plan(&crashed), topo.repair_plan(&crashed));
        for orphan in 0..topo.nodes().len() {
            prop_assert_eq!(
                flat.backup_parent(orphan, &crashed),
                topo.backup_parent(orphan, &crashed)
            );
        }
    }

    #[test]
    fn pipeline_epochs_match_engine_on_random_trees(
        seed in any::<u64>(),
        n in 1u64..90,
        fanout in 2usize..6,
        threads in 1usize..9,
        streaming in any::<bool>(),
    ) {
        let topo = random_topology(seed, n, fanout);
        let flat = FlatTopology::from_topology(&topo);
        let epochs = 3u64;

        let mut engine = Engine::new(&WeightedSum, &topo);
        let mut expected = Vec::new();
        for epoch in 0..epochs {
            let values: Vec<u64> =
                (0..n).map(|i| mix(seed ^ epoch, i) & 0xFFFF).collect();
            let out = engine.run_epoch(epoch, &values);
            expected.push((
                engine.last_final_psr().copied(),
                out.result,
                out.stats.contributors.clone(),
            ));
        }

        let mut pipeline =
            EpochPipeline::new(&WeightedSum, &flat, Threads::fixed(threads), streaming);
        let mut got = Vec::new();
        pipeline.run(
            0,
            epochs,
            |epoch, values| {
                for (i, v) in values.iter_mut().enumerate() {
                    *v = mix(seed ^ epoch, i as u64) & 0xFFFF;
                }
            },
            |_, final_psr, result, contributors| {
                got.push((final_psr.copied(), result.clone(), contributors.to_vec()));
            },
        );
        prop_assert_eq!(&got, &expected);
    }
}

/// One deterministic SIES case so the cryptographic scheme (not just
/// the transparent one) is pinned through the pipeline in this suite.
#[test]
fn sies_pipeline_matches_engine_deterministically() {
    use sies_core::SystemParams;
    use sies_net::deploy::SiesDeployment;

    let n = 96u64;
    let mut rng = StdRng::seed_from_u64(7);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let mut topo_rng = StdRng::seed_from_u64(11);
    let topo = Topology::random_tree(&mut topo_rng, n, 5);
    let flat = FlatTopology::from_topology(&topo);

    let mut engine = Engine::new(&dep, &topo);
    let mut expected = Vec::new();
    for epoch in 0..3u64 {
        let values: Vec<u64> = (0..n).map(|i| (epoch * 37 + i * 3) % 4999).collect();
        let out = engine.run_epoch(epoch, &values);
        expected.push((engine.last_final_psr().map(|p| p.to_bytes()), out.result));
    }

    for threads in [1usize, 4] {
        for streaming in [false, true] {
            let mut pipeline = EpochPipeline::new(&dep, &flat, Threads::fixed(threads), streaming);
            let mut got = Vec::new();
            pipeline.run(
                0,
                3,
                |epoch, values| {
                    for (i, v) in values.iter_mut().enumerate() {
                        *v = (epoch * 37 + i as u64 * 3) % 4999;
                    }
                },
                |_, final_psr, result, _| {
                    got.push((final_psr.map(|p| p.to_bytes()), result.clone()));
                },
            );
            assert_eq!(got, expected, "threads={threads} streaming={streaming}");
        }
    }
}
