//! Serial-equivalence oracle for the struct-of-arrays epoch pipeline at
//! CI scale (the throughput smoke leg of the determinism matrix).
//!
//! One SIES deployment, one complete tree: the legacy pointer-tree
//! engine run serially produces the reference SHA-256 digest; the SoA
//! [`EpochPipeline`] must reproduce it bit-for-bit at threads
//! {1, 2, 8} ∪ {`SIES_TEST_THREADS`} × streaming {off, on}. The
//! population defaults to 2 000 and CI's determinism matrix raises it to
//! 10 000 via `SIES_SOA_N`, so the exact configuration the acceptance
//! criterion names ("digest asserted at threads 1/2/8, streaming
//! on/off, N = 10k") runs on every push.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sies_core::SystemParams;
use sies_crypto::hash::HashFunction;
use sies_crypto::sha256::Sha256;
use sies_net::engine::Engine;
use sies_net::pipeline::EpochPipeline;
use sies_net::scheme::SchemeError;
use sies_net::{EvaluatedSum, FlatTopology, SiesDeployment, Threads, Topology};

const SEED: u64 = 42;
const EPOCHS: u64 = 4;

fn population() -> u64 {
    std::env::var("SIES_SOA_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2_000)
}

fn thread_sweep() -> Vec<usize> {
    let mut sweep = vec![1, 2, 8];
    if let Some(t) = std::env::var("SIES_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if t > 0 && !sweep.contains(&t) {
            sweep.push(t);
        }
    }
    sweep
}

/// The bench suite's canonical digest byte layout: final PSR bytes,
/// verdict, contributor set — folded per epoch.
fn fold_epoch(
    digest: &mut Sha256,
    final_psr: Option<&sies_core::scheme::Psr>,
    result: &Result<EvaluatedSum, SchemeError>,
    contributors: &[u32],
) {
    if let Some(psr) = final_psr {
        digest.update(&psr.to_bytes());
    }
    match result {
        Ok(sum) => {
            digest.update(&[1, u8::from(sum.integrity_checked)]);
            digest.update(&sum.sum.to_bits().to_le_bytes());
        }
        Err(SchemeError::VerificationFailed(m)) => {
            digest.update(&[2]);
            digest.update(m.as_bytes());
        }
        Err(SchemeError::Malformed(m)) => {
            digest.update(&[3]);
            digest.update(m.as_bytes());
        }
    }
    for sid in contributors {
        digest.update(&sid.to_le_bytes());
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn soa_pipeline_digest_matches_legacy_engine() {
    let n = population();
    let mut rng = StdRng::seed_from_u64(SEED ^ n);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let flat = FlatTopology::from_topology(&topo);

    // Legacy serial reference.
    let reference = {
        let mut engine = Engine::new(&dep, &topo);
        let mut values_rng = StdRng::seed_from_u64(SEED ^ n ^ 0xEB0C);
        let mut digest = Sha256::new();
        for epoch in 0..EPOCHS {
            let values: Vec<u64> = (0..n).map(|_| values_rng.random_range(0..5000)).collect();
            let out = engine.run_epoch(epoch, &values);
            fold_epoch(
                &mut digest,
                engine.last_final_psr(),
                &out.result,
                &out.stats.contributors,
            );
        }
        hex(&digest.finalize())
    };

    for threads in thread_sweep() {
        for streaming in [false, true] {
            let mut pipeline = EpochPipeline::new(&dep, &flat, Threads::fixed(threads), streaming);
            let mut values_rng = StdRng::seed_from_u64(SEED ^ n ^ 0xEB0C);
            let mut digest = Sha256::new();
            pipeline.run(
                0,
                EPOCHS,
                |_, values| {
                    for v in values.iter_mut() {
                        *v = values_rng.random_range(0..5000);
                    }
                },
                |_, final_psr, result, contributors| {
                    fold_epoch(&mut digest, final_psr, result, contributors);
                },
            );
            assert_eq!(
                hex(&digest.finalize()),
                reference,
                "SoA pipeline diverged from the legacy engine at N={n} \
                 threads={threads} streaming={streaming}"
            );
        }
    }
}

/// The pipeline's memory accounting must stay inside the stated budget:
/// arena plus both epoch buffers within 256 bytes/node at the test
/// population (the CI gate checks the same bound on the 1M artifact).
#[test]
fn soa_state_stays_inside_byte_budget() {
    let n = population();
    let mut rng = StdRng::seed_from_u64(SEED ^ n);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let flat = FlatTopology::from_topology(&topo);
    let mut pipeline = EpochPipeline::new(&dep, &flat, Threads::fixed(8), true);
    // Warm every buffer so capacities reflect steady state.
    pipeline.run(0, 2, |_, v| v.fill(1), |_, _, _, _| {});
    let total = flat.bytes() + pipeline.state_bytes();
    let per_node = total.div_ceil(flat.num_nodes());
    assert!(
        per_node <= 256,
        "arena + epoch state is {per_node} B/node at N={n} (budget: 256)"
    );
}
