//! Regression lock for the SECOA inflation-tamper fix: a covert
//! MAX_RANK inflation injected at any point of the tree must survive the
//! max-fold all the way to the root (where a smaller bump could be
//! absorbed by a sibling's larger honest rank) and be **detected** by
//! the inflation-certificate check — on every topology shape we run,
//! including one repaired around a crashed aggregator mid-epoch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::secoa::SecoaSum;
use sies_net::engine::{Attack, Engine};
use sies_net::radio::LossyRadio;
use sies_net::recovery::RecoveryConfig;
use sies_net::topology::{Role, Topology};
use std::collections::HashSet;

const N: u64 = 16;

fn secoa(seed: u64) -> SecoaSum {
    let mut rng = StdRng::seed_from_u64(seed);
    // Reduced sketch/modulus parameters keep the RSA chains fast; the
    // detection path is identical to the paper-grade configuration.
    SecoaSum::new(&mut rng, N, 16, 256)
}

/// The topology fixture set: complete trees across fanouts plus seeded
/// random trees (ragged shapes, varying depth).
fn fixtures() -> Vec<(String, Topology)> {
    let mut set = Vec::new();
    for fanout in [2usize, 4, 8] {
        set.push((
            format!("complete-f{fanout}"),
            Topology::complete_tree(N, fanout),
        ));
    }
    for seed in [1u64, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        set.push((
            format!("random-{seed}"),
            Topology::random_tree(&mut rng, N, 5),
        ));
    }
    set
}

/// Inflation at a source's uplink is rejected at the root on every
/// fixture topology — the regression that previously slipped through
/// when the forged rank was not the network-wide maximum.
#[test]
fn max_rank_inflation_is_detected_on_every_topology() {
    let dep = secoa(42);
    for (name, topo) in fixtures() {
        let values: Vec<u64> = (0..N).map(|i| 1800 + 200 * i).collect();
        // Attack every source position in turn: absorption bugs are
        // position-dependent (a victim under the subtree with the honest
        // maximum is the case a too-small bump would mask).
        for victim_source in 0..N as u32 {
            let victim = topo.source_node(victim_source).unwrap();
            let mut engine = Engine::new(&dep, &topo);
            let out =
                engine.run_epoch_with(0, &values, &HashSet::new(), &[Attack::TamperAtNode(victim)]);
            assert!(
                out.result.is_err(),
                "undetected inflation: topology {name}, victim source {victim_source}"
            );
        }
        // Sanity: the same epoch with no attack verifies.
        let mut engine = Engine::new(&dep, &topo);
        assert!(
            engine.run_epoch(0, &values).result.is_ok(),
            "clean epoch rejected on {name}"
        );
    }
}

/// Inflation injected at an *aggregator's* uplink (where the PSR already
/// folds several children) must also reach the root and be detected.
#[test]
fn max_rank_inflation_at_aggregators_is_detected() {
    let dep = secoa(43);
    for (name, topo) in fixtures() {
        let values: Vec<u64> = (0..N).map(|i| 2000 + 37 * i).collect();
        let aggregators: Vec<_> = topo
            .nodes()
            .iter()
            .filter(|n| matches!(n.role, Role::Aggregator) && n.id != topo.root())
            .map(|n| n.id)
            .collect();
        for agg in aggregators {
            let mut engine = Engine::new(&dep, &topo);
            let out =
                engine.run_epoch_with(0, &values, &HashSet::new(), &[Attack::TamperAtNode(agg)]);
            assert!(
                out.result.is_err(),
                "undetected inflation: topology {name}, aggregator node {agg}"
            );
        }
    }
}

/// The backup-parent case: an aggregator crashes, its children re-attach
/// via the repair plan, and the tampered PSR travels the *repaired*
/// route — detection must not depend on the original tree shape.
#[test]
fn max_rank_inflation_is_detected_on_repaired_topology() {
    let dep = secoa(44);
    let topo = Topology::complete_tree(N, 4);
    let crashed_agg = topo.node(topo.root()).children[1];
    assert!(matches!(topo.node(crashed_agg).role, Role::Aggregator));
    let values: Vec<u64> = (0..N).map(|i| 1900 + 53 * i).collect();

    for victim_source in 0..N as u32 {
        let victim = topo.source_node(victim_source).unwrap();
        let mut engine = Engine::new(&dep, &topo);
        let mut rng = StdRng::seed_from_u64(1000 + victim_source as u64);
        let rec = engine.run_epoch_recovering(
            0,
            &values,
            &HashSet::from([crashed_agg]),
            &[Attack::TamperAtNode(victim)],
            &LossyRadio::new(0.0, 3),
            &RecoveryConfig::default(),
            &mut rng,
        );
        // The victim's subtree may itself have been pruned with the crash
        // (then the tamper never reaches the root and acceptance is
        // honest); otherwise the inflated PSR must be rejected.
        if rec.aggregate_corrupted {
            assert!(
                rec.outcome.result.is_err(),
                "undetected inflation through backup parent: victim source {victim_source}"
            );
        }
    }

    // The repaired route with no attack still verifies end to end.
    let mut engine = Engine::new(&dep, &topo);
    let mut rng = StdRng::seed_from_u64(7);
    let rec = engine.run_epoch_recovering(
        0,
        &values,
        &HashSet::from([crashed_agg]),
        &[],
        &LossyRadio::new(0.0, 3),
        &RecoveryConfig::default(),
        &mut rng,
    );
    assert!(rec.outcome.result.is_ok(), "clean repaired epoch rejected");
    assert!(!rec.aggregate_corrupted);
}
