//! Telemetry cross-checks: the counters the stack records must
//! reconcile exactly with the ground truth the engine and chaos harness
//! hand back through their return values, and turning telemetry on or
//! off (or changing the worker-thread count) must not change a single
//! result byte.
//!
//! Every test here snapshots the process-global registry around a run
//! and compares the diff against independently accumulated reports.
//! Because the registry and kill-switch are process-global, all tests in
//! this file serialize on one lock.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::{SystemParams, Threads};
use sies_net::chaos::{run_chaos, ChaosConfig};
use sies_net::engine::Engine;
use sies_net::radio::LossyRadio;
use sies_net::recovery::{RecoveryConfig, RecoveryReport};
use sies_net::{SiesDeployment, Topology};
use sies_telemetry as tel;
use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

const N: u64 = 16;

fn switch_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn sies(seed: u64) -> SiesDeployment {
    let mut rng = StdRng::seed_from_u64(seed);
    SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap())
}

/// Runs `epochs` recovering epochs, returning the summed recovery
/// reports and per-epoch stats totals — the engine-side ground truth.
struct GroundTruth {
    reports: RecoveryReport,
    retransmit_bytes: u64,
    control_bytes: u64,
    data_bytes: u64,
}

fn run_recovering(seed: u64, epochs: u64, loss: f64) -> GroundTruth {
    let dep = sies(seed);
    let topo = Topology::complete_tree(N, 4);
    let mut engine = Engine::new(&dep, &topo);
    let radio = LossyRadio::new(loss, 2);
    let recovery = RecoveryConfig::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut gt = GroundTruth {
        reports: RecoveryReport::default(),
        retransmit_bytes: 0,
        control_bytes: 0,
        data_bytes: 0,
    };
    let values = vec![7u64; N as usize];
    for epoch in 0..epochs {
        let run = engine.run_epoch_recovering(
            epoch,
            &values,
            &HashSet::new(),
            &[],
            &radio,
            &recovery,
            &mut rng,
        );
        let r = &run.report;
        gt.reports.link.attempts += r.link.attempts;
        gt.reports.link.failed_links += r.link.failed_links;
        gt.reports.link.retransmitted_links += r.link.retransmitted_links;
        gt.reports.delivered_links += r.delivered_links;
        gt.reports.lost_links += r.lost_links;
        gt.reports.recovered_by_resolicit += r.recovered_by_resolicit;
        gt.reports.acks += r.acks;
        gt.reports.nacks += r.nacks;
        gt.reports.resolicitations += r.resolicitations;
        gt.reports.failure_reports += r.failure_reports;
        gt.reports.control_bytes += r.control_bytes;
        gt.retransmit_bytes += run.outcome.stats.bytes.retransmit;
        gt.control_bytes += run.outcome.stats.bytes.control;
        gt.data_bytes += run.outcome.stats.bytes.data_total();
    }
    gt
}

/// The recovery-protocol counters recorded inside `simulate_uplink`
/// must reconcile exactly with the reports the engine aggregates from
/// the same outcomes: every ACK, NACK, re-solicitation, retransmission
/// and loss observed by telemetry was injected by the protocol, and
/// vice versa.
#[test]
fn recovery_counters_reconcile_with_engine_reports() {
    let _guard = switch_lock();
    tel::set_enabled(true);
    let before = tel::global().snapshot();
    let gt = run_recovering(42, 60, 0.25);
    let d = tel::global().snapshot().diff(&before);
    tel::clear_enabled();

    assert_eq!(d.counter("recovery.acks"), gt.reports.acks);
    assert_eq!(d.counter("recovery.nacks"), gt.reports.nacks);
    assert_eq!(
        d.counter("recovery.resolicitations"),
        gt.reports.resolicitations
    );
    assert_eq!(
        d.counter("recovery.data_attempts"),
        gt.reports.link.attempts
    );
    assert_eq!(d.counter("recovery.delivered"), gt.reports.delivered_links);
    assert_eq!(d.counter("recovery.lost"), gt.reports.lost_links);
    // One simulate_uplink call per uplink transfer, delivered or not.
    assert_eq!(
        d.counter("recovery.uplinks"),
        gt.reports.delivered_links + gt.reports.lost_links
    );
    // Retransmitted frames = attempts beyond the first per uplink.
    assert_eq!(
        d.counter("recovery.retransmits"),
        gt.reports.link.attempts - (gt.reports.delivered_links + gt.reports.lost_links)
    );
    // Byte-class counters absorbed from the engine's epoch meter.
    assert_eq!(d.counter("net.bytes.retransmit"), gt.retransmit_bytes);
    assert_eq!(d.counter("net.bytes.control"), gt.control_bytes);
    assert_eq!(
        d.counter("net.bytes.source_to_agg")
            + d.counter("net.bytes.agg_to_agg")
            + d.counter("net.bytes.agg_to_querier"),
        gt.data_bytes
    );
    assert!(gt.reports.nacks > 0, "25% loss should produce NACKs");
    assert!(
        d.counter("recovery.retransmits") > 0,
        "25% loss should retransmit"
    );
}

/// Chaos-harness fault injection must reconcile with telemetry: every
/// injected attack is counted, every crash epoch contributes its crash
/// count, and the journal's injected-fault events match.
#[test]
fn chaos_fault_injection_reconciles_with_telemetry() {
    let _guard = switch_lock();
    let dep = sies(3);
    let topo = Topology::complete_tree(N, 4);
    let cfg = ChaosConfig {
        seed: 3,
        epochs: 120,
        loss_rate: 0.10,
        crash_prob: 0.3,
        attack_prob: 0.4,
        threads: Threads::serial(),
        ..ChaosConfig::default()
    };

    tel::set_enabled(true);
    tel::journal().set_capacity(1 << 16);
    let _ = tel::journal().drain();
    let before = tel::global().snapshot();
    let m = run_chaos(&dep, &topo, &cfg);
    let d = tel::global().snapshot().diff(&before);
    let events = tel::journal().drain();
    tel::clear_enabled();

    // One attack per attack epoch; crashes are 1–3 per crash epoch.
    assert_eq!(d.counter("chaos.attacks_injected"), m.attack_epochs);
    let crashes = d.counter("chaos.crashes_injected");
    assert!(
        crashes >= m.crash_epochs && crashes <= 3 * m.crash_epochs,
        "{crashes} crashes over {} crash epochs",
        m.crash_epochs
    );

    // Journal events agree with the counters.
    let attack_events = events
        .iter()
        .filter(|e| e.kind == tel::EventKind::AttackInjected)
        .count() as u64;
    let crash_events: u64 = events
        .iter()
        .filter(|e| e.kind == tel::EventKind::CrashInjected)
        .map(|e| e.a)
        .sum();
    assert_eq!(attack_events, m.attack_epochs);
    assert_eq!(crash_events, crashes);

    // Losses observed by the recovery layer equal the harness totals.
    assert_eq!(d.counter("recovery.lost"), m.lost_links);
    assert_eq!(d.counter("recovery.delivered"), m.delivered_links);
    assert_eq!(d.counter("recovery.resolicitations"), m.resolicitations);
    assert_eq!(d.counter("net.bytes.retransmit"), m.retransmit_bytes);
    assert_eq!(d.counter("net.bytes.control"), m.control_bytes);

    // Verdict counters cover every epoch.
    let accepted = events
        .iter()
        .filter(|e| e.kind == tel::EventKind::EpochAccepted)
        .count() as u64;
    assert_eq!(accepted, m.ok_epochs);
}

/// The determinism oracle: the chaos result digest (verdicts, sums,
/// contributor sets) is byte-identical with telemetry on or off and at
/// every worker-thread count — recording is observation, never
/// interference.
#[test]
fn chaos_digest_invariant_under_telemetry_and_threads() {
    let _guard = switch_lock();
    let dep = sies(9);
    let topo = Topology::complete_tree(N, 4);
    let cfg = ChaosConfig {
        seed: 9,
        epochs: 50,
        loss_rate: 0.10,
        crash_prob: 0.2,
        attack_prob: 0.3,
        threads: Threads::serial(),
        ..ChaosConfig::default()
    };

    tel::set_enabled(false);
    let off = run_chaos(&dep, &topo, &cfg);
    tel::set_enabled(true);
    let on = run_chaos(&dep, &topo, &cfg);
    assert_eq!(off.result_digest, on.result_digest);
    assert_eq!(off, on, "telemetry changed chaos metrics");

    for threads in [1usize, 2, 8] {
        let cfg_t = ChaosConfig {
            threads: Threads::fixed(threads),
            ..cfg
        };
        tel::set_enabled(threads % 2 == 0); // alternate the switch too
        let m = run_chaos(&dep, &topo, &cfg_t);
        assert_eq!(
            m.result_digest, off.result_digest,
            "digest diverged at {threads} threads"
        );
    }
    tel::clear_enabled();
}

/// EpochStats derived from the meter diff must still satisfy the byte
/// accounting identities the old hand-threaded code guaranteed, with
/// the kill-switch in both positions.
#[test]
fn epoch_stats_identical_with_switch_on_and_off() {
    let _guard = switch_lock();
    let dep = sies(5);
    let topo = Topology::complete_tree(N, 4);
    let values = vec![11u64; N as usize];

    tel::set_enabled(false);
    let mut engine_off = Engine::new(&dep, &topo);
    let off = engine_off.run_epoch_with(0, &values, &HashSet::new(), &[]);
    tel::set_enabled(true);
    let mut engine_on = Engine::new(&dep, &topo);
    let on = engine_on.run_epoch_with(0, &values, &HashSet::new(), &[]);
    tel::clear_enabled();

    assert_eq!(off.stats.bytes, on.stats.bytes);
    assert_eq!(off.stats.sources_run, on.stats.sources_run);
    assert_eq!(off.stats.aggregators_run, on.stats.aggregators_run);
    assert_eq!(off.stats.contributors, on.stats.contributors);
    assert_eq!(off.stats.energy_tx, on.stats.energy_tx);
    assert_eq!(off.stats.energy_rx, on.stats.energy_rx);
    assert!(off.result.is_ok() && on.result.is_ok());
    assert_eq!(off.stats.sources_run, N);
}
