//! Full-stack integration tests: workload → query plan → SIES network →
//! verified results, checked against plaintext recomputation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::query::{Aggregate, CmpOp, Predicate, Query, QueryResult};
use sies_core::{setup, Attribute, ResultWidth, Source, SourceId, SystemParams};
use sies_crypto::DEFAULT_PRIME_256;
use sies_net::engine::Engine;
use sies_net::{SiesDeployment, Topology};
use sies_workload::intel_lab::{DomainScale, IntelLabGenerator};
use sies_workload::ReadingGenerator;

/// Runs one SUM sub-query through a real tree and returns the verified sum.
fn run_sum_epoch(
    sources: &[Source],
    aggregator: &sies_core::Aggregator,
    querier: &sies_core::Querier,
    epoch: u64,
    values: &[u64],
) -> u64 {
    let psrs: Vec<_> = sources
        .iter()
        .zip(values)
        .map(|(s, &v)| s.initialize(epoch, v).unwrap())
        .collect();
    let final_psr = aggregator.merge(&psrs).unwrap();
    querier.evaluate(&final_psr, epoch).unwrap().sum
}

#[test]
fn twenty_epochs_of_exact_sums_over_the_engine() {
    // The paper's experimental procedure: a SUM query over 20 epochs.
    let n = 256u64;
    let mut rng = StdRng::seed_from_u64(1);
    let deployment = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topology = Topology::complete_tree(n, 4);
    let mut engine = Engine::new(&deployment, &topology);
    let mut workload = IntelLabGenerator::new(5, n as usize);
    for epoch in 0..20u64 {
        let values = workload.epoch_values(epoch, DomainScale::DEFAULT);
        let expected: u64 = values.iter().sum();
        let out = engine.run_epoch(epoch, &values);
        let res = out.result.expect("honest epoch verifies");
        assert_eq!(res.sum as u64, expected, "epoch {epoch}");
        assert!(res.integrity_checked);
    }
}

#[test]
fn every_aggregate_matches_plaintext_recomputation() {
    let n = 64u64;
    let scale = DomainScale::DEFAULT;
    let mut rng = StdRng::seed_from_u64(2);
    let params = SystemParams::with_prime(n, DEFAULT_PRIME_256, ResultWidth::U64).unwrap();
    let (querier, creds, aggregator) = setup(&mut rng, params);
    let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
    let mut workload = ReadingGenerator::new(9, n as usize, scale);
    let readings = workload.epoch_readings(0);

    let hot = Predicate::Cmp(Attribute::Temperature, CmpOp::Gt, scale.scale(28.0));
    let cases = vec![
        Query {
            aggregate: Aggregate::Sum(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        },
        Query {
            aggregate: Aggregate::Sum(Attribute::Light),
            predicate: hot.clone(),
            epoch_duration_ms: 1000,
        },
        Query {
            aggregate: Aggregate::Count,
            predicate: hot.clone(),
            epoch_duration_ms: 1000,
        },
        Query {
            aggregate: Aggregate::Avg(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        },
        Query {
            aggregate: Aggregate::Variance(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        },
        Query {
            aggregate: Aggregate::StdDev(Attribute::Voltage),
            predicate: hot,
            epoch_duration_ms: 1000,
        },
    ];

    for (qi, query) in cases.into_iter().enumerate() {
        let plan = query.plan();
        // Run one SIES instance per sub-query term.
        let mut sums = Vec::new();
        for term_idx in 0..plan.terms().len() {
            let epoch = (qi * 8 + term_idx) as u64;
            let values: Vec<u64> = readings
                .iter()
                .map(|r| plan.source_values(r)[term_idx])
                .collect();
            sums.push(run_sum_epoch(
                &sources,
                &aggregator,
                &querier,
                epoch,
                &values,
            ));
        }
        let secured = plan.finalize(&sums).unwrap();

        // Plaintext reference.
        let reference = {
            let matching: Vec<_> = readings
                .iter()
                .filter(|r| query.predicate.eval(r))
                .collect();
            let count = matching.len() as f64;
            match query.aggregate {
                Aggregate::Sum(a) => {
                    QueryResult::Exact(matching.iter().map(|r| r.get(a)).sum::<u64>())
                }
                Aggregate::Count => QueryResult::Exact(matching.len() as u64),
                Aggregate::Avg(a) => {
                    QueryResult::Real(matching.iter().map(|r| r.get(a) as f64).sum::<f64>() / count)
                }
                Aggregate::Variance(a) | Aggregate::StdDev(a) => {
                    let mean = matching.iter().map(|r| r.get(a) as f64).sum::<f64>() / count;
                    let var = matching
                        .iter()
                        .map(|r| (r.get(a) as f64 - mean).powi(2))
                        .sum::<f64>()
                        / count;
                    match query.aggregate {
                        Aggregate::StdDev(_) => QueryResult::Real(var.sqrt()),
                        _ => QueryResult::Real(var),
                    }
                }
            }
        };

        match (secured, reference) {
            (QueryResult::Exact(a), QueryResult::Exact(b)) => {
                assert_eq!(a, b, "query {qi}")
            }
            (QueryResult::Real(a), QueryResult::Real(b)) => {
                assert!(
                    (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                    "query {qi}: secured {a} vs plaintext {b}"
                )
            }
            other => panic!("query {qi}: result kind mismatch {other:?}"),
        }
    }
}

#[test]
fn arbitrary_topologies_are_equivalent() {
    // The tree shape must never affect the verified SUM (merging is
    // associative and commutative).
    let n = 40u64;
    let mut rng = StdRng::seed_from_u64(3);
    let deployment = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let values: Vec<u64> = (0..n).map(|i| 1800 + i * 37).collect();
    let expected: u64 = values.iter().sum();

    let mut sums = Vec::new();
    for fanout in [2usize, 3, 7] {
        let topo = Topology::complete_tree(n, fanout);
        let mut engine = Engine::new(&deployment, &topo);
        sums.push(engine.run_epoch(0, &values).result.unwrap().sum as u64);
    }
    for seed in 0..3u64 {
        let mut trng = StdRng::seed_from_u64(seed);
        let topo = Topology::random_tree(&mut trng, n, 5);
        let mut engine = Engine::new(&deployment, &topo);
        sums.push(engine.run_epoch(0, &values).result.unwrap().sum as u64);
    }
    assert!(
        sums.iter().all(|&s| s == expected),
        "sums {sums:?} != {expected}"
    );
}

#[test]
fn progressive_node_failures_degrade_gracefully() {
    let n = 64u64;
    let mut rng = StdRng::seed_from_u64(4);
    let deployment = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topology = Topology::complete_tree(n, 4);
    let values = vec![100u64; n as usize];

    // Fail more and more sources; the verified sum must track the
    // surviving set exactly.
    let mut failed = std::collections::HashSet::new();
    for (round, &victim) in [3u32, 17, 31, 42, 55].iter().enumerate() {
        failed.insert(topology.source_node(victim).unwrap());
        let mut engine = Engine::new(&deployment, &topology);
        let out = engine.run_epoch_with(round as u64, &values, &failed, &[]);
        let res = out.result.expect("honest failures must verify");
        assert_eq!(res.sum as u64, 100 * (n - 1 - round as u64));
        assert_eq!(out.stats.contributors.len() as u64, n - 1 - round as u64);
    }
}

#[test]
fn u64_width_supports_large_values() {
    let n = 16u64;
    let mut rng = StdRng::seed_from_u64(5);
    let params = SystemParams::with_prime(n, DEFAULT_PRIME_256, ResultWidth::U64).unwrap();
    let (querier, creds, aggregator) = setup(&mut rng, params);
    let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
    // Values far above the 4-byte field.
    let values: Vec<u64> = (0..n).map(|i| (1u64 << 40) + i).collect();
    let expected: u64 = values.iter().sum();
    assert_eq!(
        run_sum_epoch(&sources, &aggregator, &querier, 0, &values),
        expected
    );
}

#[test]
fn contributor_sets_are_order_insensitive() {
    let n = 8u64;
    let mut rng = StdRng::seed_from_u64(6);
    let deployment = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let psrs: Vec<_> = (0..n as SourceId)
        .map(|i| deployment.source(i).initialize(1, 50).unwrap())
        .collect();
    let merged = {
        use sies_net::scheme::AggregationScheme;
        deployment.merge(&psrs)
    };
    let forward: Vec<SourceId> = (0..n as SourceId).collect();
    let mut backward = forward.clone();
    backward.reverse();
    let a = deployment
        .querier()
        .evaluate_with_contributors(&merged, 1, &forward)
        .unwrap();
    let b = deployment
        .querier()
        .evaluate_with_contributors(&merged, 1, &backward)
        .unwrap();
    assert_eq!(a.sum, b.sum);
}
