//! Property-based end-to-end tests: random topologies, random values,
//! random failure sets and random attacks, asserting the SIES invariants
//! the paper proves (exactness, failure-robust verification, attack
//! detection).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::{SourceId, SystemParams};
use sies_net::engine::{Attack, Engine};
use sies_net::{SiesDeployment, Topology};
use std::collections::HashSet;

/// Builds a deployment + random topology from a seed.
fn build(n: u64, fanout: usize, seed: u64) -> (SiesDeployment, Topology) {
    let mut rng = StdRng::seed_from_u64(seed);
    let deployment = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::random_tree(&mut rng, n, fanout.max(2));
    (deployment, topo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactness over arbitrary trees and values (Theorem-level claim:
    /// the verified SUM equals the plain sum, always).
    #[test]
    fn sums_are_exact(
        seed in 0u64..1000,
        fanout in 2usize..8,
        values in proptest::collection::vec(0u64..100_000, 2..40),
    ) {
        let n = values.len() as u64;
        let (deployment, topo) = build(n, fanout, seed);
        let mut engine = Engine::new(&deployment, &topo);
        let out = engine.run_epoch(seed, &values);
        let res = out.result.expect("honest epoch verifies");
        prop_assert_eq!(res.sum as u64, values.iter().sum::<u64>());
    }

    /// Verification under arbitrary honest failure sets: the sum over the
    /// surviving contributors is exact and verifies.
    #[test]
    fn failures_never_break_verification(
        seed in 0u64..1000,
        values in proptest::collection::vec(1u64..10_000, 4..24),
        failure_bits in 0u32..0xFFFF,
    ) {
        let n = values.len() as u64;
        let (deployment, topo) = build(n, 4, seed);
        // Fail any subset of sources except all of them.
        let mut failed = HashSet::new();
        let mut surviving = 0u64;
        let mut expected = 0u64;
        for (i, &v) in values.iter().enumerate() {
            if failure_bits >> (i % 16) & 1 == 1 && i % 3 != 0 {
                failed.insert(topo.source_node(i as SourceId).unwrap());
            } else {
                surviving += 1;
                expected += v;
            }
        }
        prop_assume!(surviving > 0);
        let mut engine = Engine::new(&deployment, &topo);
        let out = engine.run_epoch_with(seed, &values, &failed, &[]);
        let res = out.result.expect("honest failures verify");
        prop_assert_eq!(res.sum as u64, expected);
        prop_assert_eq!(out.stats.contributors.len() as u64, surviving);
    }

    /// Any single covert attack on any node is detected.
    #[test]
    fn any_single_attack_is_detected(
        seed in 0u64..1000,
        values in proptest::collection::vec(1u64..10_000, 4..20),
        victim_idx in 0usize..20,
        kind in 0u8..3,
    ) {
        let n = values.len() as u64;
        let (deployment, topo) = build(n, 3, seed);
        let victim = topo.source_node((victim_idx % values.len()) as SourceId).unwrap();
        let attack = match kind {
            0 => Attack::TamperAtNode(victim),
            1 => Attack::DropAtNode(victim),
            _ => Attack::DuplicateAtNode(victim),
        };
        let mut engine = Engine::new(&deployment, &topo);
        let out = engine.run_epoch_with(seed, &values, &HashSet::new(), &[attack]);
        prop_assert!(out.result.is_err(), "attack {:?} went undetected", attack);
    }

    /// Replay of any earlier epoch's final PSR is rejected for all later
    /// epochs.
    #[test]
    fn replays_always_rejected(
        seed in 0u64..1000,
        values in proptest::collection::vec(1u64..10_000, 4..16),
        gap in 1u64..5,
    ) {
        let n = values.len() as u64;
        let (deployment, topo) = build(n, 4, seed);
        let mut engine = Engine::new(&deployment, &topo);
        prop_assert!(engine.run_epoch(0, &values).result.is_ok());
        for e in 1..gap {
            prop_assert!(engine.run_epoch(e, &values).result.is_ok());
        }
        let out = engine.run_epoch_with(gap, &values, &HashSet::new(), &[Attack::ReplayFinal]);
        prop_assert!(out.result.is_err(), "replay accepted at epoch {gap}");
    }

    /// Ciphertext malleability in the *value* direction is caught: adding
    /// K_t·δ to a ciphertext would shift the sum without touching the
    /// share field — but the adversary doesn't know K_t, and adding any
    /// *known* constant δ disturbs the share field.
    #[test]
    fn constant_injection_is_detected(
        seed in 0u64..1000,
        delta in 1u64..u64::MAX,
        values in proptest::collection::vec(1u64..10_000, 2..10),
    ) {
        use sies_crypto::u256::U256;
        use sies_net::scheme::AggregationScheme;
        let n = values.len() as u64;
        let (deployment, _) = build(n, 4, seed);
        let psrs: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| deployment.source_init(i as SourceId, 7, v))
            .collect();
        let merged = deployment.merge(&psrs);
        let p = *deployment.querier().params().prime();
        let forged = sies_core::Psr::from_ciphertext(
            merged.ciphertext().add_mod(&U256::from_u64(delta).rem(&p), &p),
        );
        let contributors: Vec<SourceId> = (0..n as SourceId).collect();
        let res = deployment
            .querier()
            .evaluate_with_contributors(&forged, 7, &contributors);
        prop_assert!(res.is_err(), "injected constant {delta} accepted");
    }
}
