//! End-to-end runs where every PSR physically round-trips through the
//! framed wire format between hops — the closest the simulator gets to
//! real radio transport.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::{Psr, SourceId, SystemParams};
use sies_net::scheme::AggregationScheme;
use sies_net::wire::{crc32, Packet, PacketType, WireError, FRAME_OVERHEAD};
use sies_net::{SiesDeployment, Topology};

/// Sends a PSR across one "radio hop": encode, (optionally corrupt),
/// decode.
fn hop(psr: &Psr, epoch: u64, sender: u32, corrupt_byte: Option<usize>) -> Result<Psr, WireError> {
    let mut bytes = Packet::from_psr(psr, epoch, sender).encode();
    if let Some(i) = corrupt_byte {
        let idx = i % bytes.len();
        bytes[idx] ^= 0xFF;
    }
    Packet::decode(&bytes)?.to_psr()
}

#[test]
fn full_tree_over_the_wire() {
    let n = 32u64;
    let mut rng = StdRng::seed_from_u64(3);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topo = Topology::complete_tree(n, 4);
    let epoch = 9;
    let values: Vec<u64> = (0..n).map(|i| 2000 + i).collect();

    // Walk the tree manually, pushing every PSR through the wire codec.
    let mut outputs: Vec<Vec<Psr>> = vec![Vec::new(); topo.nodes().len()];
    for id in topo.post_order() {
        let node = topo.node(id);
        let psr = match node.role {
            sies_net::Role::Source(s) => dep.source_init(s, epoch, values[s as usize]),
            sies_net::Role::Aggregator => {
                let children: Vec<Psr> = node
                    .children
                    .iter()
                    .flat_map(|&c| outputs[c].clone())
                    .collect();
                dep.merge(&children)
            }
        };
        let transported = hop(&psr, epoch, id as u32, None).expect("clean hop");
        assert_eq!(transported, psr, "wire transport must be lossless");
        outputs[id].push(transported);
    }
    let final_psr = outputs[topo.root()][0];
    let contributors: Vec<SourceId> = (0..n as SourceId).collect();
    let res = dep.evaluate(&final_psr, epoch, &contributors).unwrap();
    assert_eq!(res.sum as u64, values.iter().sum::<u64>());
}

#[test]
fn corrupted_hop_is_caught_by_crc_before_crypto() {
    let mut rng = StdRng::seed_from_u64(4);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(2).unwrap());
    let psr = dep.source_init(0, 1, 55);
    for byte in 0..(FRAME_OVERHEAD + 32) {
        let r = hop(&psr, 1, 0, Some(byte));
        assert!(
            r.is_err(),
            "corruption at byte {byte} slipped through the CRC"
        );
    }
}

#[test]
fn framing_overhead_is_constant() {
    let mut rng = StdRng::seed_from_u64(5);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(2).unwrap());
    let psr = dep.source_init(1, 0, 9);
    let framed = Packet::from_psr(&psr, 0, 1).encode();
    assert_eq!(framed.len(), FRAME_OVERHEAD + Psr::wire_size());
}

#[test]
fn non_psr_packets_do_not_decode_as_psrs() {
    let pkt = Packet {
        packet_type: PacketType::FailureReport,
        epoch: 2,
        sender: 3,
        payload: vec![0u8; 32],
    };
    let decoded = Packet::decode(&pkt.encode()).unwrap();
    assert!(decoded.to_psr().is_err());
}

#[test]
fn crc_distinguishes_any_two_epochs() {
    // Same PSR, different epoch header: frames must differ (replay at the
    // framing level is visible even before SIES's cryptographic check).
    let mut rng = StdRng::seed_from_u64(6);
    let dep = SiesDeployment::new(&mut rng, SystemParams::new(2).unwrap());
    let psr = dep.source_init(0, 7, 123);
    let f1 = Packet::from_psr(&psr, 7, 0).encode();
    let f2 = Packet::from_psr(&psr, 8, 0).encode();
    assert_ne!(f1, f2);
    assert_ne!(crc32(&f1), crc32(&f2));
}
