//! The serial-vs-parallel determinism oracle (PR acceptance gate).
//!
//! The parallel epoch pipeline shards the source phase across worker
//! threads but merges partial aggregates in deterministic tree order, so
//! for any fixed seed it must produce **byte-identical** aggregates,
//! verification verdicts, and results JSON to the serial engine — at
//! every thread count. These tests are the differential proof:
//!
//! * clean, failed-node, and attacked epochs through `run_epoch_with`;
//! * the recovery runner (`run_epoch_recovering`) with crashed
//!   aggregators, lossy radio, and covert attacks;
//! * the chaos harness metrics and the serialized reliability JSON;
//! * the throughput suite's SHA-256 digest oracle.
//!
//! CI runs this suite with `SIES_TEST_THREADS` ∈ {1, 2, 8} to pin the
//! guarantee on hosts with different core counts.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_bench::experiments;
use sies_bench::throughput::throughput_suite;
use sies_core::SystemParams;
use sies_net::engine::{Attack, Engine, EpochOutcome};
use sies_net::radio::LossyRadio;
use sies_net::recovery::RecoveryConfig;
use sies_net::topology::Role;
use sies_net::{SiesDeployment, Threads, Topology};
use std::collections::HashSet;

const N: u64 = 64;
const F: usize = 4;

/// Thread counts every differential test sweeps. `SIES_TEST_THREADS`
/// (set by the CI matrix) is added on top when present.
fn thread_sweep() -> Vec<usize> {
    let mut sweep = vec![1, 2, 4, 8];
    if let Some(t) = std::env::var("SIES_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if t > 0 && !sweep.contains(&t) {
            sweep.push(t);
        }
    }
    sweep
}

fn deployment(seed: u64) -> SiesDeployment {
    let mut rng = StdRng::seed_from_u64(seed);
    SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap())
}

fn values(epoch: u64) -> Vec<u64> {
    (0..N).map(|i| 1800 + (i * 31 + epoch * 7) % 3200).collect()
}

/// Everything an epoch outcome exposes, flattened to comparable bytes.
fn outcome_fingerprint(out: &EpochOutcome, psr_bytes: Option<[u8; 32]>) -> String {
    format!(
        "result={:?} contributors={:?} sources_run={} bytes={:?} psr={:?}",
        out.result, out.stats.contributors, out.stats.sources_run, out.stats.bytes, psr_bytes
    )
}

/// Clean epochs, a failed source node, and covert attacks: the threaded
/// engine must reproduce the serial engine's verdicts, contributor sets,
/// edge-byte accounting, and final PSR bytes, bit for bit.
#[test]
fn epoch_pipeline_is_byte_identical_across_thread_counts() {
    let dep = deployment(11);
    let topo = Topology::complete_tree(N, F);
    let failed_source = topo.source_node(9).unwrap();
    let victim = topo.source_node(20).unwrap();

    // epoch -> (failed nodes, attacks); mixes accept and reject paths.
    let scenarios: Vec<(HashSet<_>, Vec<Attack>)> = vec![
        (HashSet::new(), vec![]),
        (HashSet::from([failed_source]), vec![]),
        (HashSet::new(), vec![Attack::TamperAtNode(victim)]),
        (HashSet::new(), vec![Attack::ReplayFinal]),
        (HashSet::from([failed_source]), vec![]),
    ];

    let mut baseline: Vec<String> = Vec::new();
    {
        let mut engine = Engine::new(&dep, &topo); // serial: no threading at all
        for (epoch, (failed, attacks)) in scenarios.iter().enumerate() {
            let out = engine.run_epoch_with(epoch as u64, &values(epoch as u64), failed, attacks);
            let psr = engine.last_final_psr().map(|p| p.to_bytes());
            baseline.push(outcome_fingerprint(&out, psr));
        }
    }

    for threads in thread_sweep() {
        let mut engine = Engine::new(&dep, &topo).with_threads(Threads::fixed(threads));
        for (epoch, (failed, attacks)) in scenarios.iter().enumerate() {
            let out = engine.run_epoch_with(epoch as u64, &values(epoch as u64), failed, attacks);
            let psr = engine.last_final_psr().map(|p| p.to_bytes());
            assert_eq!(
                outcome_fingerprint(&out, psr),
                baseline[epoch],
                "epoch {epoch} diverged at {threads} threads"
            );
        }
    }
}

/// The recovery runner reroutes around a crashed aggregator and
/// retransmits over a lossy radio; its RNG draw order must not depend on
/// the worker count, so verdict, contributor set, and recovery
/// accounting stay identical at every thread count.
#[test]
fn recovery_runner_is_thread_count_invariant() {
    let dep = deployment(23);
    let topo = Topology::complete_tree(N, F);
    let crashed_agg = topo.node(topo.root()).children[1];
    assert!(matches!(topo.node(crashed_agg).role, Role::Aggregator));
    let victim = topo.source_node(40).unwrap();

    let run = |threads: Option<usize>| {
        let mut engine = match threads {
            None => Engine::new(&dep, &topo),
            Some(t) => Engine::new(&dep, &topo).with_threads(Threads::fixed(t)),
        };
        let mut out = Vec::new();
        for (epoch, attacks) in [
            (0u64, vec![]),
            (1, vec![Attack::TamperAtNode(victim)]),
            (2, vec![]),
        ] {
            let mut rng = StdRng::seed_from_u64(500 + epoch);
            let rec = engine.run_epoch_recovering(
                epoch,
                &values(epoch),
                &HashSet::from([crashed_agg]),
                &attacks,
                &LossyRadio::new(0.12, 3),
                &RecoveryConfig::default(),
                &mut rng,
            );
            let psr = engine.last_final_psr().map(|p| p.to_bytes());
            out.push((
                outcome_fingerprint(&rec.outcome, psr),
                rec.report.clone(),
                rec.aggregate_corrupted,
            ));
        }
        out
    };

    let baseline = run(None);
    for threads in thread_sweep() {
        assert_eq!(
            run(Some(threads)),
            baseline,
            "recovery runner diverged at {threads} threads"
        );
    }
}

/// The full chaos harness plus the reliability experiment: the metrics
/// struct and the serialized `BENCH_reliability` JSON must be identical
/// whether the source phase ran on 1 worker or many.
#[test]
fn reliability_json_is_thread_count_invariant() {
    let serial = experiments::reliability_threaded(7, 50, Threads::serial());
    let baseline = serde_json::to_string(&serial).unwrap();
    for threads in thread_sweep() {
        let threaded = experiments::reliability_threaded(7, 50, Threads::fixed(threads));
        assert_eq!(
            serde_json::to_string(&threaded).unwrap(),
            baseline,
            "reliability JSON diverged at {threads} threads"
        );
    }
}

/// The throughput suite's own digest oracle, exercised from outside the
/// bench crate: every configuration of every population must hash to the
/// serial baseline's digest (the suite panics internally otherwise).
#[test]
fn throughput_suite_digest_oracle_holds() {
    let points = throughput_suite(3, 1, &thread_sweep());
    for pair in points.chunks(thread_sweep().len()) {
        for p in pair {
            assert_eq!(p.result_digest, pair[0].result_digest);
        }
    }
}
