//! The security claims of the paper, asserted as a machine-checked matrix:
//! SIES detects every covert attack (Theorems 2–4); CMT detects none
//! (its §II-D weakness); SECOA detects integrity attacks but leaks
//! plaintext values (no confidentiality).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::cmt::CmtDeployment;
use sies_baselines::secoa::SecoaSum;
use sies_core::SystemParams;
use sies_net::engine::{Attack, Engine};
use sies_net::scheme::AggregationScheme;
use sies_net::{SiesDeployment, Topology};
use std::collections::HashSet;

const N: u64 = 16;

fn attack_result<S: AggregationScheme>(scheme: &S, topo: &Topology, attacks: &[Attack]) -> bool {
    let mut engine = Engine::new(scheme, topo);
    let values = vec![500u64; topo.num_sources() as usize];
    let warm = engine.run_epoch(0, &values);
    assert!(
        warm.result.is_ok(),
        "warm-up epoch must verify for {}",
        scheme.name()
    );
    engine
        .run_epoch_with(1, &values, &HashSet::new(), attacks)
        .result
        .is_err()
}

fn attack_suite(topo: &Topology) -> Vec<(&'static str, Vec<Attack>)> {
    let victim_source = topo.source_node(5).unwrap();
    let victim_agg = topo.node(topo.root()).children[0];
    vec![
        (
            "tamper at source",
            vec![Attack::TamperAtNode(victim_source)],
        ),
        (
            "tamper at aggregator",
            vec![Attack::TamperAtNode(victim_agg)],
        ),
        ("drop source PSR", vec![Attack::DropAtNode(victim_source)]),
        ("drop aggregator PSR", vec![Attack::DropAtNode(victim_agg)]),
        (
            "duplicate source PSR",
            vec![Attack::DuplicateAtNode(victim_source)],
        ),
        ("replay final PSR", vec![Attack::ReplayFinal]),
        (
            "combined tamper + duplicate",
            vec![
                Attack::TamperAtNode(victim_source),
                Attack::DuplicateAtNode(victim_agg),
            ],
        ),
    ]
}

#[test]
fn sies_detects_every_attack() {
    let topo = Topology::complete_tree(N, 4);
    let mut rng = StdRng::seed_from_u64(10);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    for (name, attacks) in attack_suite(&topo) {
        assert!(attack_result(&sies, &topo, &attacks), "SIES missed: {name}");
    }
}

#[test]
fn cmt_detects_no_attack() {
    // The motivating weakness: CMT accepts all corrupted results.
    let topo = Topology::complete_tree(N, 4);
    let mut rng = StdRng::seed_from_u64(11);
    let cmt = CmtDeployment::new(&mut rng, N);
    for (name, attacks) in attack_suite(&topo) {
        assert!(
            !attack_result(&cmt, &topo, &attacks),
            "CMT unexpectedly detected: {name}"
        );
    }
}

#[test]
fn secoa_detects_every_attack() {
    let topo = Topology::complete_tree(N, 4);
    let mut rng = StdRng::seed_from_u64(12);
    let secoa = SecoaSum::new(&mut rng, N, 32, 256);
    for (name, attacks) in attack_suite(&topo) {
        assert!(
            attack_result(&secoa, &topo, &attacks),
            "SECOA missed: {name}"
        );
    }
}

#[test]
fn sies_ciphertexts_look_uniform() {
    // A weak statistical confidentiality check: with per-epoch one-time
    // keys, encrypting the SAME value across epochs must give ciphertexts
    // with no shared structure — every byte position should take many
    // distinct values.
    let mut rng = StdRng::seed_from_u64(13);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(4).unwrap());
    let mut by_position: Vec<HashSet<u8>> = vec![HashSet::new(); 32];
    for epoch in 0..64u64 {
        let psr = sies.source(0).initialize(epoch, 1234).unwrap();
        for (i, b) in psr.to_bytes().iter().enumerate() {
            by_position[i].insert(*b);
        }
    }
    for (i, set) in by_position.iter().enumerate() {
        assert!(
            set.len() > 32,
            "byte {i} of the ciphertext shows structure ({} values)",
            set.len()
        );
    }
}

#[test]
fn cmt_high_bytes_also_randomized() {
    // CMT is also confidential (mod 2^160 pad): same check.
    let mut rng = StdRng::seed_from_u64(14);
    let cmt = CmtDeployment::new(&mut rng, 4);
    let mut distinct = HashSet::new();
    for epoch in 0..64u64 {
        let psr = cmt.source_init(0, epoch, 1234);
        distinct.insert(psr.ciphertext().to_be_bytes());
    }
    assert_eq!(
        distinct.len(),
        64,
        "CMT ciphertexts must differ across epochs"
    );
}

#[test]
fn secoa_leaks_plaintext_structure() {
    // SECOA has no confidentiality: its PSR carries the sketch values in
    // clear, and those values are a deterministic function of the
    // reading. Encrypting the same value twice in the same epoch gives
    // identical sketch fields — an eavesdropper distinguishes values.
    let mut rng = StdRng::seed_from_u64(15);
    let secoa = SecoaSum::new(&mut rng, 4, 16, 256);
    let a = secoa.source_init(0, 0, 1000);
    let b = secoa.source_init(0, 0, 1000);
    let c = secoa.source_init(0, 0, 2000);
    let xs =
        |p: &sies_baselines::secoa::SecoaPsr| -> Vec<u8> { p.slots.iter().map(|s| s.x).collect() };
    assert_eq!(xs(&a), xs(&b), "same value, same epoch: identical sketches");
    assert_ne!(
        xs(&a),
        xs(&c),
        "different values produce distinguishable sketches"
    );
}

#[test]
fn compromised_source_caveat_holds_for_all() {
    // Paper §III-C: a compromised source can always lie about its own
    // reading undetected — for every scheme. We model it as the source
    // honestly running the protocol on a false value.
    let topo = Topology::complete_tree(N, 4);
    let mut rng = StdRng::seed_from_u64(16);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let mut engine = Engine::new(&sies, &topo);
    let mut values = vec![100u64; N as usize];
    values[7] = 99_999; // the lie
    let out = engine.run_epoch(0, &values);
    let res = out.result.expect("protocol-compliant lie is accepted");
    assert_eq!(res.sum as u64, 100 * (N - 1) + 99_999);
}
