//! Cross-scheme comparisons under identical instrumentation: exactness,
//! approximation quality, per-edge bytes against the §V cost models, and
//! energy ordering — the qualitative content of Tables III and V.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::cmt::CmtDeployment;
use sies_baselines::secoa::SecoaSum;
use sies_core::SystemParams;
use sies_net::engine::Engine;
use sies_net::{SiesDeployment, Topology};
use sies_workload::intel_lab::{DomainScale, IntelLabGenerator};

const N: u64 = 64;
const F: usize = 4;
const J: usize = 64;

struct Fixture {
    topo: Topology,
    values: Vec<u64>,
    true_sum: u64,
}

fn fixture() -> Fixture {
    let topo = Topology::complete_tree(N, F);
    let mut workload = IntelLabGenerator::new(77, N as usize);
    let values = workload.epoch_values(0, DomainScale::DEFAULT);
    let true_sum = values.iter().sum();
    Fixture {
        topo,
        values,
        true_sum,
    }
}

#[test]
fn sies_and_cmt_are_exact_secoa_is_approximate() {
    let fx = fixture();
    let mut rng = StdRng::seed_from_u64(1);

    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let out = Engine::new(&sies, &fx.topo).run_epoch(0, &fx.values);
    assert_eq!(out.result.unwrap().sum as u64, fx.true_sum);

    let cmt = CmtDeployment::new(&mut rng, N);
    let out = Engine::new(&cmt, &fx.topo).run_epoch(0, &fx.values);
    assert_eq!(out.result.unwrap().sum as u64, fx.true_sum);

    let secoa = SecoaSum::new(&mut rng, N, J, 256);
    let out = Engine::new(&secoa, &fx.topo).run_epoch(0, &fx.values);
    let est = out.result.unwrap().sum;
    assert_ne!(
        est as u64, fx.true_sum,
        "sketches almost surely miss the exact value"
    );
    let rel = (est - fx.true_sum as f64).abs() / fx.true_sum as f64;
    assert!(rel < 0.5, "estimate {est} too far from {}", fx.true_sum);
}

#[test]
fn byte_accounting_matches_cost_models() {
    let fx = fixture();
    let mut rng = StdRng::seed_from_u64(2);

    // SIES: 32 bytes on every edge (Table V).
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let out = Engine::new(&sies, &fx.topo).run_epoch(0, &fx.values);
    let b = out.stats.bytes;
    assert_eq!(b.source_to_agg, 32 * N);
    assert!((b.per_aa_edge() - 32.0).abs() < 1e-9);
    assert_eq!(b.agg_to_querier, 32);

    // CMT: 20 bytes everywhere.
    let cmt = CmtDeployment::new(&mut rng, N);
    let out = Engine::new(&cmt, &fx.topo).run_epoch(0, &fx.values);
    assert_eq!(out.stats.bytes.source_to_agg, 20 * N);
    assert_eq!(out.stats.bytes.agg_to_querier, 20);

    // SECOA with a 32-byte test modulus: J·S_sk + J·32 + 20 per S-A edge
    // (Equation 10), and a folded A-Q message (Equation 11).
    let secoa = SecoaSum::new(&mut rng, N, J, 256);
    let out = Engine::new(&secoa, &fx.topo).run_epoch(0, &fx.values);
    let b = out.stats.bytes;
    let expected_sa = (J + J * 32 + 20) as f64;
    assert!((b.per_sa_edge() - expected_sa).abs() < 1e-9);
    // The sink folds same-position SEALs: strictly smaller than S-A.
    assert!((b.agg_to_querier as f64) < expected_sa);
    assert!(b.agg_to_querier as usize >= J + 32 + 20);
}

#[test]
fn energy_ordering_follows_bytes() {
    let fx = fixture();
    let mut rng = StdRng::seed_from_u64(3);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let cmt = CmtDeployment::new(&mut rng, N);
    let secoa = SecoaSum::new(&mut rng, N, J, 256);

    let e_sies = Engine::new(&sies, &fx.topo)
        .run_epoch(0, &fx.values)
        .stats
        .energy_tx;
    let e_cmt = Engine::new(&cmt, &fx.topo)
        .run_epoch(0, &fx.values)
        .stats
        .energy_tx;
    let e_secoa = Engine::new(&secoa, &fx.topo)
        .run_epoch(0, &fx.values)
        .stats
        .energy_tx;

    assert!(e_cmt < e_sies, "20-byte PSRs beat 32-byte PSRs");
    assert!(e_sies * 10.0 < e_secoa, "SECOA energy must dwarf SIES");
    // SIES/CMT ratio equals the byte ratio 32/20.
    assert!((e_sies / e_cmt - 1.6).abs() < 1e-6);
}

#[test]
fn secoa_estimate_improves_with_more_sketches() {
    // The J-accuracy trade-off the paper describes (J=300 bounds error
    // within 10% with probability 90%): error should shrink with J on
    // average. Use several epochs to smooth the comparison.
    let fx = fixture();
    let mut rng = StdRng::seed_from_u64(4);
    let mut mean_rel = Vec::new();
    for j in [8usize, 128] {
        let secoa = SecoaSum::new(&mut rng, N, j, 256);
        let mut engine = Engine::new(&secoa, &fx.topo);
        let mut rels = Vec::new();
        for epoch in 0..6u64 {
            let out = engine.run_epoch(epoch, &fx.values);
            let est = out.result.unwrap().sum;
            rels.push((est - fx.true_sum as f64).abs() / fx.true_sum as f64);
        }
        mean_rel.push(rels.iter().sum::<f64>() / rels.len() as f64);
    }
    assert!(
        mean_rel[1] < mean_rel[0],
        "J=128 error {} should beat J=8 error {}",
        mean_rel[1],
        mean_rel[0]
    );
}

#[test]
fn per_party_cpu_ordering_holds() {
    // Table III's qualitative ordering on this host: SECOA source and
    // querier costs dominate SIES and CMT by a wide margin.
    let fx = fixture();
    let mut rng = StdRng::seed_from_u64(5);
    let sies = SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap());
    let cmt = CmtDeployment::new(&mut rng, N);
    let secoa = SecoaSum::new(&mut rng, N, J, 256);

    let s_sies = Engine::new(&sies, &fx.topo).run_epoch(0, &fx.values).stats;
    let s_cmt = Engine::new(&cmt, &fx.topo).run_epoch(0, &fx.values).stats;
    let s_secoa = Engine::new(&secoa, &fx.topo).run_epoch(0, &fx.values).stats;

    assert!(s_secoa.per_source_cpu() > 10 * s_sies.per_source_cpu());
    assert!(s_secoa.per_aggregator_cpu() > 10 * s_sies.per_aggregator_cpu());
    assert!(s_secoa.querier_cpu > s_sies.querier_cpu);
    // CMT and SIES are within roughly an order of magnitude of each
    // other. The bound is deliberately loose: this test runs under a
    // debug build with the rest of the suite hammering every core, so
    // per-call wall times carry heavy scheduler noise.
    let ratio =
        s_sies.per_source_cpu().as_nanos() as f64 / s_cmt.per_source_cpu().as_nanos().max(1) as f64;
    assert!(ratio < 200.0, "SIES/CMT source ratio {ratio} too large");
}
