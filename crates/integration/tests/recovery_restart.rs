//! Crash-restart recovery from the signed receipt journal (PR
//! acceptance gate).
//!
//! A SIES querier's verification state must survive its own death: the
//! journal is the only thing a restarted querier trusts, so these tests
//! drive the full loop — chaos run, seeded kills, journal-only rebuild —
//! and assert the restarted run is indistinguishable from one that never
//! crashed:
//!
//! * ≥500-epoch kill-restart smoke with ≥3 seeded kill points: zero
//!   false accepts, zero false rejects, metrics and result digest
//!   byte-identical to the uninterrupted run;
//! * the same identity at every worker-thread count (the determinism
//!   matrix's restart leg — CI sweeps `SIES_TEST_THREADS` ∈ {1, 2, 8});
//! * a torn final record (crash mid-write) tolerated end-to-end: the
//!   journal resumes, re-records the torn epoch, and a cold replay of
//!   the finished file still matches the live digest.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::SystemParams;
use sies_net::chaos::{run_chaos, run_chaos_with_restarts, ChaosConfig, RestartConfig};
use sies_net::journal::{replay, JournalConfig, ReceiptJournal};
use sies_net::{SiesDeployment, Threads, Topology};
use std::path::PathBuf;

const N: u64 = 64;
const F: usize = 4;

fn thread_sweep() -> Vec<usize> {
    let mut sweep = vec![1, 2, 8];
    if let Some(t) = std::env::var("SIES_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if t > 0 && !sweep.contains(&t) {
            sweep.push(t);
        }
    }
    sweep
}

fn deployment(seed: u64) -> (SiesDeployment, Topology) {
    let mut rng = StdRng::seed_from_u64(seed);
    (
        SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap()),
        Topology::complete_tree(N, F),
    )
}

fn chaos_config(seed: u64, epochs: u64, threads: Threads) -> ChaosConfig {
    ChaosConfig {
        seed,
        epochs,
        loss_rate: 0.10,
        crash_prob: 0.20,
        attack_prob: 0.30,
        threads,
        ..ChaosConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sies-restart-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The CI recovery smoke: 500 adversarial epochs, 3 seeded querier
/// kills, recovery from the journal alone — and nothing distinguishes
/// the result from the run that never died.
#[test]
fn kill_restart_smoke_is_sound_and_loses_nothing() {
    let (dep, topo) = deployment(31);
    let cfg = chaos_config(31, 500, Threads::serial());
    let baseline = run_chaos(&dep, &topo, &cfg);
    assert!(baseline.sound());

    let kill_epochs = RestartConfig::seeded_kills(77, cfg.epochs, 3);
    assert_eq!(kill_epochs.len(), 3);
    let rcfg = RestartConfig {
        journal_path: tmp("smoke.journal"),
        journal: JournalConfig::default(),
        kill_epochs,
    };
    let out = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).unwrap();

    assert_eq!(out.restarts, 3);
    assert!(out.replayed_receipts > 0);
    assert_eq!(out.metrics.false_accepts, 0, "false accept across restart");
    assert_eq!(out.metrics.false_rejects, 0, "false reject across restart");
    assert_eq!(out.metrics.sum_mismatches, 0);
    assert_eq!(
        out.metrics, baseline,
        "restarted run must be byte-identical to the uninterrupted run"
    );
    std::fs::remove_file(&rcfg.journal_path).unwrap();
}

/// The determinism matrix's restart leg: the replayed-from-journal
/// digest equals the uninterrupted digest at every worker-thread count.
#[test]
fn restart_digest_is_thread_count_invariant() {
    let (dep, topo) = deployment(47);
    let base_cfg = chaos_config(47, 120, Threads::serial());
    let baseline = run_chaos(&dep, &topo, &base_cfg);

    let kill_epochs = RestartConfig::seeded_kills(9, base_cfg.epochs, 3);
    for threads in thread_sweep() {
        let cfg = ChaosConfig {
            threads: Threads::fixed(threads),
            ..base_cfg
        };
        let rcfg = RestartConfig {
            journal_path: tmp(&format!("threads-{threads}.journal")),
            journal: JournalConfig::default(),
            kill_epochs: kill_epochs.clone(),
        };
        let out = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).unwrap();
        assert_eq!(
            out.metrics.result_digest, baseline.result_digest,
            "restart digest diverged at {threads} threads"
        );
        assert_eq!(
            out.metrics, baseline,
            "metrics diverged at {threads} threads"
        );
        std::fs::remove_file(&rcfg.journal_path).unwrap();
    }
}

/// Crash *mid-write*: the journal's final record is torn at an arbitrary
/// byte. Resume truncates the tail, re-records the torn epoch, and the
/// finished journal cold-replays to the same digest as a live run.
#[test]
fn torn_tail_recovery_end_to_end() {
    let (dep, topo) = deployment(53);
    let cfg = chaos_config(53, 30, Threads::serial());
    let baseline = run_chaos(&dep, &topo, &cfg);

    // Journal the full run live, then tear the last record.
    let path = tmp("torn-e2e.journal");
    let jcfg = JournalConfig::default();
    let rcfg = RestartConfig {
        journal_path: path.clone(),
        journal: jcfg.clone(),
        kill_epochs: vec![],
    };
    let out = run_chaos_with_restarts(&dep, &topo, &cfg, &rcfg).unwrap();
    assert_eq!(out.metrics, baseline);

    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);

    // The restarted querier sees 29 intact receipts plus torn evidence…
    let (mut journal, state) = ReceiptJournal::resume(&path, &jcfg).unwrap();
    assert_eq!(state.summary.receipts.len() as u64, cfg.epochs - 1);
    assert!(state.summary.torn_tail.is_some());
    assert_eq!(state.next_epoch, cfg.epochs - 1);

    // …re-runs the torn epoch on a fresh network replica of the same
    // seed (deterministic, so the receipt is bit-identical), and ends
    // with a journal whose cold replay matches the uninterrupted run.
    let rerun = run_chaos(&dep, &topo, &cfg);
    assert_eq!(rerun.result_digest, baseline.result_digest);
    // Rebuild the torn epoch's receipt by replaying the chaos stream up
    // to it: simplest honest stand-in for "the engine re-runs epoch 29".
    let replayed = state.summary.receipts.clone();
    drop(state);
    let mut complete = ChaosConfig { epochs: 30, ..cfg };
    complete.threads = Threads::serial();
    let full_path = tmp("torn-e2e-full.journal");
    let full_rcfg = RestartConfig {
        journal_path: full_path.clone(),
        journal: jcfg.clone(),
        kill_epochs: vec![],
    };
    let _ = run_chaos_with_restarts(&dep, &topo, &complete, &full_rcfg).unwrap();
    let full = replay(&full_path, &jcfg).unwrap();
    let mut torn_epoch_receipt = full.summary.receipts.last().unwrap().clone();
    assert_eq!(torn_epoch_receipt.epoch, 29);
    assert_eq!(&full.summary.receipts[..29], &replayed[..]);

    journal.record(&mut torn_epoch_receipt);
    journal.finish().unwrap();

    let healed = replay(&path, &jcfg).unwrap();
    assert_eq!(healed.summary.receipts.len() as u64, cfg.epochs);
    assert!(healed.summary.torn_tail.is_none());
    use sies_crypto::HashFunction;
    let digest: String = healed
        .digest
        .finalize()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    assert_eq!(
        digest, baseline.result_digest,
        "healed journal must replay to the live digest"
    );

    std::fs::remove_file(&path).unwrap();
    std::fs::remove_file(&full_path).unwrap();
}
