//! Fault-tolerance integration tests: the recovery protocol, topology
//! repair, and the seeded chaos harness exercised across every scheme.
//!
//! The soundness contract under faults:
//! * **SIES** — exact and verifying: over any chaos mix, zero false
//!   accepts, zero false rejects, and every accepted sum equals the
//!   ground-truth sum over the reported contributors.
//! * **SECOA** — verifying but approximate: zero false accepts/rejects;
//!   accepted sums are estimates, so exactness is not asserted.
//! * **CMT / plain TAG** — no integrity verification by design: covert
//!   attacks are *expected* to slip through (the paper's motivating
//!   weakness); honest faults must still never produce a panic or a
//!   spurious rejection.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::cmt::CmtDeployment;
use sies_baselines::plain::PlainAggregation;
use sies_baselines::secoa::SecoaSum;
use sies_core::SystemParams;
use sies_net::chaos::{run_chaos, ChaosConfig};
use sies_net::engine::Engine;
use sies_net::radio::LossyRadio;
use sies_net::recovery::RecoveryConfig;
use sies_net::topology::Role;
use sies_net::{SiesDeployment, Topology};
use std::collections::HashSet;

const N: u64 = 16;
const F: usize = 4;

fn sies(seed: u64) -> SiesDeployment {
    let mut rng = StdRng::seed_from_u64(seed);
    SiesDeployment::new(&mut rng, SystemParams::new(N).unwrap())
}

/// The acceptance-criteria test: an epoch in which an aggregator fails
/// still returns a **verified, exact** SUM because the aggregator's
/// children re-attach to the backup parent mid-epoch. The contributor
/// set stays exact, so SIES verification passes over all N sources.
#[test]
fn failed_aggregator_epoch_recovers_via_backup_parent() {
    let dep = sies(1);
    let topo = Topology::complete_tree(N, F);
    // Pick a real aggregator (a child of the sink), not a source.
    let crashed_agg = topo.node(topo.root()).children[2];
    assert!(matches!(topo.node(crashed_agg).role, Role::Aggregator));

    let values: Vec<u64> = (0..N).map(|i| 1800 + 13 * i).collect();
    let expected: u64 = values.iter().sum();
    let mut engine = Engine::new(&dep, &topo);
    let mut rng = StdRng::seed_from_u64(2);
    let run = engine.run_epoch_recovering(
        0,
        &values,
        &HashSet::from([crashed_agg]),
        &[],
        &LossyRadio::new(0.0, 3),
        &RecoveryConfig::default(),
        &mut rng,
    );

    let res = run.outcome.result.expect("repaired epoch must verify");
    assert!(res.integrity_checked);
    assert_eq!(
        res.sum, expected as f64,
        "no contribution may be lost to the crash"
    );
    assert_eq!(run.outcome.stats.contributors.len() as u64, N);
    assert_eq!(run.report.adoptions as usize, F, "every orphan re-homed");
    assert!(
        run.repairs.adoptions.values().all(|&p| p == topo.root()),
        "the nearest live ancestor of the orphans is the sink"
    );
    assert!(run.repairs.stranded.is_empty());
    assert!(!run.aggregate_corrupted);
}

/// Same repair path, but under a lossy radio: the epoch either verifies
/// exactly over the survivors or is an availability loss — never a
/// spurious verification failure.
#[test]
fn repair_composes_with_lossy_radio() {
    let dep = sies(3);
    let topo = Topology::complete_tree(N, F);
    let crashed_agg = topo.node(topo.root()).children[0];
    let values = vec![100u64; N as usize];
    let mut engine = Engine::new(&dep, &topo);
    let mut rng = StdRng::seed_from_u64(4);
    for epoch in 0..30 {
        let run = engine.run_epoch_recovering(
            epoch,
            &values,
            &HashSet::from([crashed_agg]),
            &[],
            &LossyRadio::new(0.25, 2),
            &RecoveryConfig::default(),
            &mut rng,
        );
        assert!(!run.aggregate_corrupted);
        match run.outcome.result {
            Ok(res) => {
                let expected = 100 * run.outcome.stats.contributors.len() as u64;
                assert_eq!(res.sum, expected as f64);
            }
            Err(e) => assert!(
                e.to_string().contains("querier") || e.to_string().contains("lost"),
                "honest faults must read as availability, got: {e}"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random honest failures (loss + crashes, no adversary): every
    /// scheme returns a sum over the survivors or an availability loss.
    /// Exact schemes additionally match the ground-truth sum; nothing
    /// ever false-rejects or panics.
    #[test]
    fn honest_chaos_verifies_over_survivors_for_every_scheme(
        seed in 0u64..10_000,
        loss in 0.0f64..0.35,
        crash in 0.0f64..0.4,
    ) {
        let topo = Topology::complete_tree(N, F);
        let cfg = ChaosConfig {
            seed,
            epochs: 25,
            loss_rate: loss,
            crash_prob: crash,
            attack_prob: 0.0,
            max_value: 200,
            ..ChaosConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);

        // SIES: fully sound and exact.
        let m = run_chaos(&sies(seed), &topo, &cfg);
        prop_assert!(m.sound(), "SIES unsound under honest faults: {m:?}");
        prop_assert_eq!(m.corrupted_epochs, 0);

        // CMT and plain: no verification, but honest faults never reject.
        let cmt = CmtDeployment::new(&mut rng, N);
        let m = run_chaos(&cmt, &topo, &cfg);
        prop_assert!(m.false_rejects == 0, "CMT rejected an honest epoch");
        let m = run_chaos(&PlainAggregation, &topo, &cfg);
        prop_assert!(m.false_rejects == 0, "plain TAG rejected an honest epoch");

        // SECOA: verifying (approximate), so no false rejects either.
        let secoa = SecoaSum::new(&mut rng, N, 16, 256);
        let m = run_chaos(&secoa, &topo, &cfg);
        prop_assert!(m.false_rejects == 0, "SECOA rejected an honest epoch");
        prop_assert_eq!(m.false_accepts, 0);
    }

    /// Random covert attacks: the verifying schemes (SIES, SECOA) detect
    /// every corruption — zero false accepts — even while the recovery
    /// protocol is busy repairing honest faults.
    #[test]
    fn adversarial_chaos_is_detected_by_verifying_schemes(seed in 0u64..10_000) {
        let topo = Topology::complete_tree(N, F);
        let cfg = ChaosConfig {
            seed,
            epochs: 25,
            loss_rate: 0.1,
            crash_prob: 0.1,
            attack_prob: 0.6,
            max_value: 200,
            ..ChaosConfig::default()
        };

        let m = run_chaos(&sies(seed), &topo, &cfg);
        prop_assert!(m.sound(), "SIES unsound under attack: {m:?}");
        prop_assert_eq!(m.detected_corruptions, m.corrupted_epochs);

        let mut rng = StdRng::seed_from_u64(seed);
        let secoa = SecoaSum::new(&mut rng, N, 16, 256);
        let m = run_chaos(&secoa, &topo, &cfg);
        prop_assert!(m.false_accepts == 0, "SECOA accepted a corrupted aggregate");
        prop_assert_eq!(m.false_rejects, 0);
    }
}

/// The documented expected-miss: CMT and plain TAG have no integrity
/// mechanism, so under the same adversarial mix they accept corrupted
/// aggregates — the weakness that motivates SIES (paper §II-D). The
/// assertion is deliberate: if a refactor ever makes these "detect"
/// attacks, the baseline no longer models what the paper compares
/// against.
#[test]
fn nonverifying_baselines_accept_corrupted_aggregates() {
    let topo = Topology::complete_tree(N, F);
    let cfg = ChaosConfig {
        seed: 5,
        epochs: 60,
        loss_rate: 0.0,
        crash_prob: 0.0,
        attack_prob: 1.0,
        max_value: 200,
        ..ChaosConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(5);

    let cmt = CmtDeployment::new(&mut rng, N);
    let m = run_chaos(&cmt, &topo, &cfg);
    assert!(
        m.corrupted_epochs > 0,
        "attack mix never corrupted an aggregate"
    );
    assert!(
        m.false_accepts > 0,
        "CMT unexpectedly detected covert attacks"
    );

    let m = run_chaos(&PlainAggregation, &topo, &cfg);
    assert!(
        m.false_accepts > 0,
        "plain TAG unexpectedly detected covert attacks"
    );
}
