//! Integration-test and example host crate for the SIES reproduction.
//! All substance lives in `tests/` and the workspace-level `examples/`.
