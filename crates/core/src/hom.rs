//! The additively homomorphic one-time cipher of paper §III-D.
//!
//! Encryption: `c = ℰ(m, K, k, p) = K·m + k mod p`.
//! Decryption: `m = 𝒟(c, K, k, p) = (c − k)·K⁻¹ mod p`.
//!
//! With per-message keys drawn pseudo-randomly and used once, the scheme is
//! information-theoretically confidential: lacking `k`, the ciphertext
//! carries no information about `m` for *any* value of `K` and `p`.
//! Its additive homomorphism — `ℰ(m₁,K,k₁) + ℰ(m₂,K,k₂) =
//! ℰ(m₁+m₂, K, k₁+k₂)` — is what lets aggregators fuse PSRs without keys.

use sies_crypto::mont::MontgomeryCtx;
use sies_crypto::u256::U256;

/// Encrypts `m` under global multiplier `k_global` (`K_t`) and blinding key
/// `k_blind` (`k_{i,t}`) modulo the prime `p`.
///
/// All inputs must be reduced mod `p`; `k_global` must be non-zero so that
/// decryption can invert it.
pub fn encrypt(m: &U256, k_global: &U256, k_blind: &U256, p: &U256) -> U256 {
    debug_assert!(!k_global.is_zero(), "K_t must be invertible");
    k_global.mul_mod(m, p).add_mod(k_blind, p)
}

/// Decrypts `c` given the same keys. `k_blind` is the *sum* of all blinding
/// keys when `c` aggregates several ciphertexts.
pub fn decrypt(c: &U256, k_global: &U256, k_blind: &U256, p: &U256) -> U256 {
    // Extended-Euclid inverse: the paper's `C_MI32` measures GMP's
    // Euclid-based mpz_invert; the Fermat path exists for primes too but
    // is an order of magnitude slower (see the ablation bench).
    let inv = k_global
        .inv_mod_euclid(p)
        .expect("K_t is non-zero and p is prime");
    c.sub_mod(&k_blind.rem(p), p).mul_mod(&inv, p)
}

/// [`decrypt`] with a caller-supplied inverse `K⁻¹ mod p` — the shape the
/// batch path uses after amortizing the inversions.
pub fn decrypt_with_inv(c: &U256, k_global_inv: &U256, k_blind: &U256, p: &U256) -> U256 {
    c.sub_mod(&k_blind.rem(p), p).mul_mod(k_global_inv, p)
}

/// Decrypts many epochs at once: `(c_t, K_t, Σk_t)` triples share the
/// modulus, so the `|triples|` extended-Euclid inversions collapse into
/// one via Montgomery's batch-inversion trick (`3(k−1)` multiplications
/// plus a single inversion). Output `i` is bit-identical to
/// `decrypt(c_i, K_i, k_i, p)`.
///
/// # Panics
/// Panics when some `K_t` is zero — the same keys [`decrypt`] rejects.
pub fn decrypt_batch(triples: &[(U256, U256, U256)], p: &U256) -> Vec<U256> {
    let keys: Vec<U256> = triples.iter().map(|(_, k, _)| *k).collect();
    let invs = U256::batch_inv_mod(&keys, p);
    triples
        .iter()
        .zip(invs)
        .map(|((c, _, k_blind), inv)| {
            let inv = inv.expect("K_t is non-zero and p is prime");
            decrypt_with_inv(c, &inv, k_blind, p)
        })
        .collect()
}

/// The aggregator's merge: plain modular addition of ciphertexts
/// (paper §IV-A, merging phase). Aggregators possess only `p`.
pub fn merge(c1: &U256, c2: &U256, p: &U256) -> U256 {
    c1.add_mod(c2, p)
}

/// Batched encryptor for one epoch key `K_t`: the multiply-heavy half of
/// [`encrypt`] amortized over many messages.
///
/// [`encrypt`] pays a full widening multiply plus Knuth-D division per
/// message. Since every source in an epoch multiplies by the *same*
/// `K_t`, converting `K_t` into the Montgomery domain once turns each
/// encryption into a single CIOS `mont_mul` (no division) plus a modular
/// add: `mont_mul(K_t·R, m) = K_t·R·m·R⁻¹ = K_t·m (mod p)` — the exact
/// value the generic path computes, so ciphertexts are bit-identical.
///
/// The context is `Clone + Send + Sync` plain data, so sharded epoch
/// workers can each hold one (or share a reference) with no locking and
/// no steady-state allocation.
#[derive(Debug, Clone)]
pub struct EpochCipher {
    ctx: MontgomeryCtx,
    /// `K_t · R mod p` (Montgomery form of the epoch key).
    k_mont: U256,
    p: U256,
}

impl EpochCipher {
    /// Precomputes the Montgomery context for `p` and enters `k_global`
    /// (`K_t`, non-zero) into the Montgomery domain.
    pub fn new(k_global: &U256, p: &U256) -> Self {
        debug_assert!(!k_global.is_zero(), "K_t must be invertible");
        let ctx = MontgomeryCtx::new(p);
        EpochCipher {
            k_mont: ctx.to_mont(k_global),
            ctx,
            p: *p,
        }
    }

    /// Builds from an existing Montgomery context (saves the setup cost
    /// when one context serves several epochs of the same deployment).
    pub fn with_ctx(k_global: &U256, ctx: &MontgomeryCtx) -> Self {
        debug_assert!(!k_global.is_zero(), "K_t must be invertible");
        EpochCipher {
            k_mont: ctx.to_mont(k_global),
            ctx: *ctx,
            p: ctx.modulus(),
        }
    }

    /// Encrypts `m` under this epoch's `K_t` and the per-source blinding
    /// key `k_blind`. Bit-identical to `encrypt(m, K_t, k_blind, p)`.
    pub fn encrypt(&self, m: &U256, k_blind: &U256) -> U256 {
        self.ctx.mont_mul(&self.k_mont, m).add_mod(k_blind, &self.p)
    }

    /// The modulus this cipher reduces under.
    pub fn prime(&self) -> &U256 {
        &self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sies_crypto::DEFAULT_PRIME_256;

    fn u(v: u128) -> U256 {
        U256::from_u128(v)
    }

    #[test]
    fn round_trip() {
        let p = DEFAULT_PRIME_256;
        let k_global = u(0xdead_beef_1234);
        let k_blind = u(0x9999_8888_7777);
        let m = u(424_242);
        let c = encrypt(&m, &k_global, &k_blind, &p);
        assert_ne!(c, m, "ciphertext must differ from plaintext");
        assert_eq!(decrypt(&c, &k_global, &k_blind, &p), m);
    }

    #[test]
    fn homomorphic_addition() {
        let p = DEFAULT_PRIME_256;
        let k_global = u(77_777);
        let (k1, k2) = (u(1010), u(2020));
        let (m1, m2) = (u(300), u(500));
        let c = merge(
            &encrypt(&m1, &k_global, &k1, &p),
            &encrypt(&m2, &k_global, &k2, &p),
            &p,
        );
        let ksum = k1.add_mod(&k2, &p);
        assert_eq!(decrypt(&c, &k_global, &ksum, &p), u(800));
    }

    #[test]
    fn many_way_homomorphism() {
        let p = DEFAULT_PRIME_256;
        let k_global = u(31337);
        let mut c_acc = U256::ZERO;
        let mut k_acc = U256::ZERO;
        let mut m_sum: u128 = 0;
        for i in 1..=100u128 {
            let k = u(i * 7919);
            let m = u(i * i);
            c_acc = merge(&c_acc, &encrypt(&m, &k_global, &k, &p), &p);
            k_acc = k_acc.add_mod(&k, &p);
            m_sum += i * i;
        }
        assert_eq!(decrypt(&c_acc, &k_global, &k_acc, &p), u(m_sum));
    }

    #[test]
    fn batch_decrypt_matches_serial_decrypt() {
        let p = DEFAULT_PRIME_256;
        let triples: Vec<(U256, U256, U256)> = (1..=40u128)
            .map(|i| {
                let k_global = u(i * 7919);
                let k_blind = u(i * i + 5);
                let c = encrypt(&u(i * 1000), &k_global, &k_blind, &p);
                (c, k_global, k_blind)
            })
            .collect();
        let batch = decrypt_batch(&triples, &p);
        for (i, ((c, kg, kb), got)) in triples.iter().zip(&batch).enumerate() {
            assert_eq!(*got, decrypt(c, kg, kb, &p), "triple {i}");
            assert_eq!(*got, u((i as u128 + 1) * 1000));
        }
        assert!(decrypt_batch(&[], &p).is_empty());
    }

    #[test]
    fn wrong_blinding_key_decrypts_garbage() {
        let p = DEFAULT_PRIME_256;
        let c = encrypt(&u(5), &u(3), &u(100), &p);
        assert_ne!(decrypt(&c, &u(3), &u(101), &p), u(5));
    }

    #[test]
    fn wrong_global_key_decrypts_garbage() {
        let p = DEFAULT_PRIME_256;
        let c = encrypt(&u(5), &u(3), &u(100), &p);
        assert_ne!(decrypt(&c, &u(4), &u(100), &p), u(5));
    }

    #[test]
    fn encryption_of_zero_is_blinding_key() {
        let p = DEFAULT_PRIME_256;
        let k_blind = u(0xabcdef);
        assert_eq!(encrypt(&U256::ZERO, &u(5), &k_blind, &p), k_blind);
    }

    #[test]
    fn epoch_cipher_is_bit_identical_to_generic_encrypt() {
        let p = DEFAULT_PRIME_256;
        let mut k_global = u(0xdead_beef_1234);
        let cipher_keys: Vec<(U256, U256)> = (0..64u128)
            .map(|i| (u(i * 7919 + 1), u(i.wrapping_mul(i) + 3)))
            .collect();
        for round in 0..4 {
            let cipher = EpochCipher::new(&k_global, &p);
            assert_eq!(cipher.prime(), &p);
            for (k_blind, m) in &cipher_keys {
                assert_eq!(
                    cipher.encrypt(m, k_blind),
                    encrypt(m, &k_global, k_blind, &p),
                    "round {round}"
                );
            }
            // Evolve K_t across the full range, including values > p/2.
            k_global = k_global.mul_mod(&u(0x1_0000_0001), &p).add_mod(&u(1), &p);
        }
    }

    #[test]
    fn epoch_cipher_shares_context_across_epochs() {
        let p = DEFAULT_PRIME_256;
        let ctx = sies_crypto::mont::MontgomeryCtx::new(&p);
        let a = EpochCipher::with_ctx(&u(31337), &ctx);
        let b = EpochCipher::new(&u(31337), &p);
        let m = u(123_456_789);
        let k = u(42);
        assert_eq!(a.encrypt(&m, &k), b.encrypt(&m, &k));
    }
}
