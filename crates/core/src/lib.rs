#![warn(missing_docs)]

//! # sies-core
//!
//! The SIES scheme from *Secure and Efficient In-Network Processing of
//! Exact SUM Queries* (Papadopoulos, Kiayias, Papadias — ICDE 2011).
//!
//! SIES computes **exact** SUM aggregates (and derivatives: COUNT, AVG,
//! VARIANCE, STDDEV) in-network while providing data confidentiality,
//! integrity, authentication, and freshness. It combines:
//!
//! * an additively homomorphic one-time cipher `c = K_t·m + k_{i,t} mod p`
//!   ([`hom`]) so aggregators fuse ciphertexts without keys, and
//! * additive secret sharing ([`codec`]): every plaintext embeds a
//!   per-epoch share `ss_{i,t}`; the decrypted aggregate must carry the
//!   exact sum `Σ ss_{i,t}`, which the querier can recompute — any
//!   tampering, dropping, injection, or replay breaks the match.
//!
//! ## Quick start
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use sies_core::params::SystemParams;
//! use sies_core::scheme::{setup, Source};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let params = SystemParams::new(4).unwrap();
//! let (querier, creds, aggregator) = setup(&mut rng, params);
//! let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
//!
//! // One epoch: each source encrypts its reading into a PSR…
//! let epoch = 1;
//! let psrs: Vec<_> = sources
//!     .iter()
//!     .zip([10u64, 20, 30, 40])
//!     .map(|(s, v)| s.initialize(epoch, v).unwrap())
//!     .collect();
//! // …aggregators merge them in-network…
//! let final_psr = aggregator.merge(&psrs).unwrap();
//! // …and the querier decrypts, verifies, and extracts the exact SUM.
//! let verified = querier.evaluate(&final_psr, epoch).unwrap();
//! assert_eq!(verified.sum, 100);
//! ```

pub mod codec;
pub mod error;
pub mod hom;
pub mod mutesla;
pub mod parallel;
pub mod params;
pub mod query;
pub mod rekey;
pub mod scheme;

pub use error::{Epoch, SiesError, SourceId};
pub use parallel::Threads;
pub use params::{ResultWidth, SystemParams};
pub use query::{Aggregate, Attribute, Predicate, Query, QueryPlan, QueryResult, SensorReading};
pub use scheme::{setup, Aggregator, Psr, Querier, Source, SourceCredentials, VerifiedSum};
