//! Error types for the SIES scheme.

use core::fmt;

/// Identifier of a source sensor (`𝒮_i` in the paper).
pub type SourceId = u32;

/// A time epoch `t` (paper §III-B: all parties are loosely synchronized in
/// epochs of duration `T`).
pub type Epoch = u64;

/// Errors raised by SIES setup, initialization, and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiesError {
    /// The extracted secret `s_t` did not match `Σ ss_{i,t}`: the PSR was
    /// tampered with, a contribution was dropped, a spurious contribution
    /// was injected, or the PSR is a replay from another epoch
    /// (Theorems 2 and 4).
    IntegrityViolation {
        /// The epoch being evaluated.
        epoch: Epoch,
    },
    /// A source value exceeds the configured result-field width.
    ValueTooLarge {
        /// Offending value.
        value: u64,
        /// Maximum representable value for the configured field width.
        max: u64,
    },
    /// The parameters are inconsistent (e.g. the message layout exceeds
    /// 256 bits, or `N` does not fit the padding).
    InvalidParams(String),
    /// An evaluation referenced a source id unknown to the querier.
    UnknownSource(SourceId),
    /// A μTesla packet failed authentication.
    BroadcastAuthFailure(String),
}

impl fmt::Display for SiesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiesError::IntegrityViolation { epoch } => {
                write!(
                    f,
                    "integrity/freshness verification failed at epoch {epoch}"
                )
            }
            SiesError::ValueTooLarge { value, max } => {
                write!(
                    f,
                    "source value {value} exceeds the result field maximum {max}"
                )
            }
            SiesError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            SiesError::UnknownSource(id) => write!(f, "unknown source id {id}"),
            SiesError::BroadcastAuthFailure(msg) => {
                write!(f, "broadcast authentication failure: {msg}")
            }
        }
    }
}

impl std::error::Error for SiesError {}
