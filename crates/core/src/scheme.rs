//! The four SIES phases (paper §IV-A): setup, initialization (source),
//! merging (aggregator), and evaluation (querier).
//!
//! Role separation follows the paper's Figure 1: *sources* generate
//! readings at the leaves, *aggregators* fuse partial state records (PSRs)
//! at internal nodes, and the *querier* decrypts and verifies the single
//! final PSR received from the sink.

use crate::codec::{self, SecretShare};
use crate::error::{Epoch, SiesError, SourceId};
use crate::hom::{self, EpochCipher};
use crate::parallel;
use crate::params::SystemParams;
use rand::RngCore;
use sies_crypto::prf::{self, KeyedPrf};
use sies_crypto::u256::U256;

/// Length of the long-term keys `K` and `k_i` in bytes (paper §IV-A: "in
/// our implementation we set this size to 20 bytes").
pub const KEY_BYTES: usize = 20;

/// A long-term 20-byte secret key.
pub type LongTermKey = [u8; KEY_BYTES];

/// A partial state record: the 32-byte ciphertext flowing along network
/// edges. This is the *only* thing transmitted by SIES, which is why its
/// per-edge communication cost is a constant 32 bytes (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Psr {
    ciphertext: U256,
}

impl Psr {
    /// The raw ciphertext residue.
    pub fn ciphertext(&self) -> &U256 {
        &self.ciphertext
    }

    /// Constructs from a raw ciphertext (used by adversary simulations to
    /// inject tampered PSRs).
    pub fn from_ciphertext(ciphertext: U256) -> Self {
        Psr { ciphertext }
    }

    /// Serializes to the 32-byte wire format.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.ciphertext.to_be_bytes()
    }

    /// Deserializes from the 32-byte wire format.
    pub fn from_bytes(bytes: &[u8; 32]) -> Self {
        Psr {
            ciphertext: U256::from_be_bytes(bytes),
        }
    }

    /// Wire size in bytes.
    pub const fn wire_size() -> usize {
        32
    }
}

/// The credentials the querier manually registers at source `𝒮_i` during
/// setup: `(K, k_i, p)`.
#[derive(Clone)]
pub struct SourceCredentials {
    id: SourceId,
    global_key: LongTermKey,
    source_key: LongTermKey,
    params: SystemParams,
}

/// A source sensor: runs the initialization phase each epoch.
///
/// Holds its long-term keys with the HMAC pads pre-absorbed
/// ([`KeyedPrf`]), so every epoch's PRF evaluations skip the per-call
/// key-block setup. All fields are plain owned data — a `&Source` is
/// `Sync` and can be shared freely across epoch-pipeline workers.
#[derive(Clone)]
pub struct Source {
    creds: SourceCredentials,
    global_prf: KeyedPrf,
    source_prf: KeyedPrf,
}

/// An aggregator sensor: holds only the public prime `p` (it has no keys —
/// compromising it is no worse than eavesdropping, paper §IV-B).
#[derive(Clone)]
pub struct Aggregator {
    prime: U256,
}

/// The querier: holds `K` and every `k_i`, runs the evaluation phase.
///
/// All keys are stored with their HMAC pads pre-absorbed ([`KeyedPrf`]),
/// so the per-epoch Σss recomputation costs exactly two lane-batchable
/// compressions per contributor instead of re-deriving every key
/// schedule from the raw bytes.
pub struct Querier {
    global_prf: KeyedPrf,
    source_prfs: Vec<KeyedPrf>,
    params: SystemParams,
}

/// A successfully verified SUM result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifiedSum {
    /// The exact SUM `res_t`.
    pub sum: u64,
    /// The epoch the result was verified for.
    pub epoch: Epoch,
    /// How many sources contributed.
    pub contributors: u64,
}

/// Runs the setup phase: generates `K`, `k_1..k_N` and distributes the
/// credentials. Returns the querier together with the per-source
/// credentials and the aggregator configuration.
pub fn setup(
    rng: &mut dyn RngCore,
    params: SystemParams,
) -> (Querier, Vec<SourceCredentials>, Aggregator) {
    let mut global_key = [0u8; KEY_BYTES];
    rng.fill_bytes(&mut global_key);
    let n = params.num_sources();
    let mut source_keys = Vec::with_capacity(n as usize);
    let mut creds = Vec::with_capacity(n as usize);
    for id in 0..n {
        let mut k_i = [0u8; KEY_BYTES];
        rng.fill_bytes(&mut k_i);
        source_keys.push(k_i);
        creds.push(SourceCredentials {
            id: id as SourceId,
            global_key,
            source_key: k_i,
            params: params.clone(),
        });
    }
    let aggregator = Aggregator {
        prime: *params.prime(),
    };
    let querier = Querier {
        global_prf: KeyedPrf::new(&global_key),
        source_prfs: source_keys.iter().map(|k| KeyedPrf::new(k)).collect(),
        params,
    };
    (querier, creds, aggregator)
}

impl SourceCredentials {
    /// The source's identifier.
    pub fn id(&self) -> SourceId {
        self.id
    }

    /// The shared system parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }
}

impl Source {
    /// Instantiates a source from its registered credentials.
    pub fn new(creds: SourceCredentials) -> Self {
        let global_prf = KeyedPrf::new(&creds.global_key);
        let source_prf = KeyedPrf::new(&creds.source_key);
        Source {
            creds,
            global_prf,
            source_prf,
        }
    }

    /// The source's identifier.
    pub fn id(&self) -> SourceId {
        self.creds.id
    }

    /// The initialization phase `I`: derives the epoch keys and share,
    /// encodes the reading, and encrypts it into a PSR.
    ///
    /// Per paper §IV-A this costs two `HM256` calls, one `HM1` call, one
    /// 32-byte modular multiplication and one modular addition (`C^𝒮_SIES`,
    /// Equation 3).
    pub fn initialize(&self, epoch: Epoch, value: u64) -> Result<Psr, SiesError> {
        let p = self.creds.params.prime();
        // K_t = HM256(K, t), shared by all sources.
        let k_t = self.global_prf.derive_mod_nonzero(epoch, p);
        // k_{i,t} = HM256(k_i, t), known only to S_i (and the querier).
        let k_it = self.source_prf.derive_mod(epoch, p);
        // ss_{i,t} = HM1(k_i, t).
        let ss: SecretShare = self.source_prf.hm1_epoch(epoch);
        let m = codec::encode_message(&self.creds.params, value, &ss)?;
        Ok(Psr {
            ciphertext: hom::encrypt(&m, &k_t, &k_it, p),
        })
    }

    /// Builds this epoch's shared cipher: `K_t` derived once and entered
    /// into the Montgomery domain. Every source of a deployment derives
    /// the *same* `K_t`, so one [`EpochCipher`] (built by any source, or
    /// one per shard worker) serves the whole population for the epoch.
    pub fn epoch_cipher(&self, epoch: Epoch) -> EpochCipher {
        let p = self.creds.params.prime();
        EpochCipher::new(&self.global_prf.derive_mod_nonzero(epoch, p), p)
    }

    /// The initialization phase with the epoch-shared work hoisted out:
    /// bit-identical to [`Source::initialize`] (asserted by
    /// `batched_initialize_matches_serial` below) but skips the per-call
    /// `K_t` derivation and replaces the generic multiply-and-divide with
    /// one Montgomery multiply via `cipher`.
    pub fn initialize_with(
        &self,
        cipher: &EpochCipher,
        epoch: Epoch,
        value: u64,
    ) -> Result<Psr, SiesError> {
        let p = self.creds.params.prime();
        debug_assert_eq!(cipher.prime(), p, "cipher built for a different modulus");
        let k_it = self.source_prf.derive_mod(epoch, p);
        let ss: SecretShare = self.source_prf.hm1_epoch(epoch);
        let m = codec::encode_message(&self.creds.params, value, &ss)?;
        Ok(Psr {
            ciphertext: cipher.encrypt(&m, &k_it),
        })
    }

    /// Initialization for a whole shard of sources at once: both
    /// per-source PRF sweeps (`k_{i,t}` and `ss_{i,t}`) run through the
    /// multi-lane batch pipeline — one sensor per hash lane — then each
    /// reading is encoded and encrypted under the shared `cipher`.
    /// Element-wise identical to calling [`Source::initialize_with`] per
    /// job (asserted by `batched_initialize_matches_serial` below).
    pub fn initialize_batch(
        cipher: &EpochCipher,
        epoch: Epoch,
        jobs: &[(&Source, u64)],
    ) -> Vec<Result<Psr, SiesError>> {
        let p = cipher.prime();
        let k_its = prf::derive_mod_p_many(jobs.iter().map(|(s, _)| &s.source_prf), epoch, p);
        let sss = prf::hm1_epoch_many(jobs.iter().map(|(s, _)| &s.source_prf), epoch);
        jobs.iter()
            .zip(k_its)
            .zip(sss)
            .map(|(((source, value), k_it), ss)| {
                debug_assert_eq!(
                    cipher.prime(),
                    source.creds.params.prime(),
                    "cipher built for a different modulus"
                );
                let m = codec::encode_message(&source.creds.params, *value, &ss)?;
                Ok(Psr {
                    ciphertext: cipher.encrypt(&m, &k_it),
                })
            })
            .collect()
    }

    /// Derives one epoch's complete key material — the shared cipher plus
    /// every source's `k_{i,t}` and `ss_{i,t}` — ahead of the epoch, so a
    /// precompute pool can do the PRF sweeps during the inter-epoch idle
    /// gap. Both sweeps run through the same multi-lane batch pipeline as
    /// [`Source::initialize_batch`], so consuming the material via
    /// [`Source::initialize_prewarmed`] is bit-identical to deriving on
    /// demand. Returns `None` for an empty deployment.
    pub fn derive_epoch_keys(sources: &[Source], epoch: Epoch) -> Option<EpochKeyMaterial> {
        let first = sources.first()?;
        let cipher = first.epoch_cipher(epoch);
        let p = first.creds.params.prime();
        let k_its = prf::derive_mod_p_many(sources.iter().map(|s| &s.source_prf), epoch, p);
        let sss = prf::hm1_epoch_many(sources.iter().map(|s| &s.source_prf), epoch);
        Some(EpochKeyMaterial {
            epoch,
            cipher,
            k_its,
            sss,
        })
    }

    /// The initialization phase against prewarmed key material: no PRF
    /// calls at all — one table lookup, one encode, one Montgomery
    /// multiply. Bit-identical to [`Source::initialize_with`] for the
    /// same epoch (asserted by `prewarmed_initialize_matches_serial`
    /// below).
    ///
    /// # Panics
    /// Panics if `keys` was derived for a different deployment (this
    /// source's id is out of range).
    pub fn initialize_prewarmed(
        &self,
        keys: &EpochKeyMaterial,
        value: u64,
    ) -> Result<Psr, SiesError> {
        let idx = self.creds.id as usize;
        debug_assert_eq!(
            keys.cipher.prime(),
            self.creds.params.prime(),
            "key material built for a different modulus"
        );
        let k_it = &keys.k_its[idx];
        let ss = &keys.sss[idx];
        let m = codec::encode_message(&self.creds.params, value, ss)?;
        Ok(Psr {
            ciphertext: keys.cipher.encrypt(&m, k_it),
        })
    }
}

/// One epoch's complete precomputed key material for a deployment:
/// the epoch-shared cipher (`K_t` in the Montgomery domain) and the
/// per-source blinding keys and secret shares, indexed by [`SourceId`].
/// Produced ahead of time by [`Source::derive_epoch_keys`]; consumed by
/// [`Source::initialize_prewarmed`].
#[derive(Clone)]
pub struct EpochKeyMaterial {
    epoch: Epoch,
    cipher: EpochCipher,
    k_its: Vec<U256>,
    sss: Vec<SecretShare>,
}

impl EpochKeyMaterial {
    /// The epoch this material was derived for.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The epoch-shared cipher.
    pub fn cipher(&self) -> &EpochCipher {
        &self.cipher
    }

    /// Number of sources covered.
    pub fn num_sources(&self) -> usize {
        self.k_its.len()
    }
}

impl Aggregator {
    /// Instantiates an aggregator holding the public prime.
    pub fn new(prime: U256) -> Self {
        Aggregator { prime }
    }

    /// The merging phase `M`: fuses the children's PSRs into one by
    /// modular addition (`F − 1` additions for fanout `F`, Equation 6).
    ///
    /// Returns `None` for an empty child list (a failed subtree).
    pub fn merge(&self, psrs: &[Psr]) -> Option<Psr> {
        let mut iter = psrs.iter();
        let first = *iter.next()?;
        Some(iter.fold(first, |acc, psr| Psr {
            ciphertext: hom::merge(&acc.ciphertext, &psr.ciphertext, &self.prime),
        }))
    }

    /// Merges one more PSR into an accumulator (streaming form used by the
    /// network simulator).
    pub fn merge_into(&self, acc: &mut Psr, psr: &Psr) {
        acc.ciphertext = hom::merge(&acc.ciphertext, &psr.ciphertext, &self.prime);
    }
}

impl Querier {
    /// The shared system parameters.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// The evaluation phase `E`, assuming **all** `N` sources contributed.
    pub fn evaluate(&self, final_psr: &Psr, epoch: Epoch) -> Result<VerifiedSum, SiesError> {
        let all: Vec<SourceId> = (0..self.source_prfs.len() as SourceId).collect();
        self.evaluate_with_contributors(final_psr, epoch, &all)
    }

    /// The evaluation phase with an explicit contributor set (paper §IV-B,
    /// Discussion: on node failures the querier sums only the shares of
    /// the sources that contributed).
    ///
    /// Decrypts `m_{f,t} = 𝒟(PSR_{f,t}, K_t, Σ k_{i,t}, p)`, splits it into
    /// `(res_t, s_t)`, recomputes `Σ ss_{i,t}`, and accepts iff they match
    /// (Theorems 2 and 4: integrity and freshness).
    pub fn evaluate_with_contributors(
        &self,
        final_psr: &Psr,
        epoch: Epoch,
        contributors: &[SourceId],
    ) -> Result<VerifiedSum, SiesError> {
        self.evaluate_with_contributors_threaded(final_psr, epoch, contributors, 1)
    }

    /// Per-chunk half of evaluation: `(Σ k_{i,t} mod p, Σ ss_{i,t})` over
    /// one contiguous slice of the contributor list, or the first error in
    /// slice order.
    fn contributor_partial(
        &self,
        epoch: Epoch,
        ids: &[SourceId],
    ) -> Result<(U256, U256), SiesError> {
        let p = self.params.prime();
        // Resolve every id first (the first unknown id in slice order is
        // the error, exactly as the old per-id loop reported it), then
        // run both PRF sweeps through the multi-lane batch pipeline.
        let mut prfs = Vec::with_capacity(ids.len());
        for &id in ids {
            prfs.push(
                self.source_prfs
                    .get(id as usize)
                    .ok_or(SiesError::UnknownSource(id))?,
            );
        }
        let k_its = prf::derive_mod_p_many(prfs.iter().copied(), epoch, p);
        let sss = prf::hm1_epoch_many(prfs.iter().copied(), epoch);
        let mut k_sum = U256::ZERO;
        let mut secret = U256::ZERO;
        for (k_it, ss) in k_its.iter().zip(&sss) {
            k_sum = k_sum.add_mod(k_it, p);
            secret = secret
                .checked_add(&codec::share_to_u256(ss))
                .expect("share sum fits 256 bits");
        }
        Ok((k_sum, secret))
    }

    /// [`Querier::evaluate_with_contributors`] with the per-contributor
    /// PRF recomputation sharded over `threads` scoped workers.
    ///
    /// Deterministic by construction: chunks are contiguous slices of
    /// `contributors` and the partial sums combine under exactly
    /// associative operations (modular and integer addition), so the
    /// result — including which `UnknownSource` error surfaces — is
    /// identical to the serial loop for every thread count.
    pub fn evaluate_with_contributors_threaded(
        &self,
        final_psr: &Psr,
        epoch: Epoch,
        contributors: &[SourceId],
        threads: usize,
    ) -> Result<VerifiedSum, SiesError> {
        let p = self.params.prime();
        let k_t = self.global_prf.derive_mod_nonzero(epoch, p);
        let k_t_inv = k_t
            .inv_mod_euclid(p)
            .expect("K_t is non-zero and p is prime");
        self.finish_evaluation(final_psr, epoch, contributors, threads, &k_t_inv)
    }

    /// Evaluates a whole run of epochs against one contributor set. The
    /// per-epoch extended-Euclid inversion of `K_t` — the dominant
    /// single-epoch decode cost besides the PRF sweep — collapses into a
    /// single inversion over all epochs via Montgomery's batch-inversion
    /// trick. Per-epoch results (including errors) are identical to
    /// calling [`Querier::evaluate_with_contributors_threaded`] once per
    /// epoch.
    pub fn evaluate_epochs_with_contributors(
        &self,
        finals: &[(Epoch, Psr)],
        contributors: &[SourceId],
        threads: usize,
    ) -> Vec<Result<VerifiedSum, SiesError>> {
        let p = self.params.prime();
        let k_ts: Vec<U256> = finals
            .iter()
            .map(|(epoch, _)| self.global_prf.derive_mod_nonzero(*epoch, p))
            .collect();
        let invs = U256::batch_inv_mod(&k_ts, p);
        finals
            .iter()
            .zip(invs)
            .map(|((epoch, psr), inv)| {
                let inv = inv.expect("K_t is non-zero and p is prime");
                self.finish_evaluation(psr, *epoch, contributors, threads, &inv)
            })
            .collect()
    }

    /// Shared tail of evaluation once `K_t⁻¹` is in hand: the contributor
    /// PRF sweep, decryption, decode, and the share-sum integrity check.
    fn finish_evaluation(
        &self,
        final_psr: &Psr,
        epoch: Epoch,
        contributors: &[SourceId],
        threads: usize,
        k_t_inv: &U256,
    ) -> Result<VerifiedSum, SiesError> {
        let p = self.params.prime();

        // Σ k_{i,t} mod p and Σ ss_{i,t} (plain integer) over contributors.
        // Chunks are in input order, so the first failing chunk holds the
        // globally first failing contributor.
        let mut k_sum = U256::ZERO;
        let mut expected_secret = U256::ZERO;
        for partial in parallel::map_chunks(threads, contributors, |ids| {
            self.contributor_partial(epoch, ids)
        }) {
            let (ks, es) = partial?;
            k_sum = k_sum.add_mod(&ks, p);
            expected_secret = expected_secret
                .checked_add(&es)
                .expect("share sum fits 256 bits");
        }

        let m_f = hom::decrypt_with_inv(final_psr.ciphertext(), k_t_inv, &k_sum, p);
        let decoded = codec::decode_final(&self.params, &m_f);
        if decoded.secret != expected_secret {
            return Err(SiesError::IntegrityViolation { epoch });
        }
        Ok(VerifiedSum {
            sum: decoded.result,
            epoch,
            contributors: contributors.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn full_setup(n: u64, seed: u64) -> (Querier, Vec<Source>, Aggregator) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = SystemParams::new(n).unwrap();
        let (querier, creds, agg) = setup(&mut rng, params);
        let sources = creds.into_iter().map(Source::new).collect();
        (querier, sources, agg)
    }

    fn run_epoch(sources: &[Source], agg: &Aggregator, values: &[u64], epoch: Epoch) -> Psr {
        let psrs: Vec<Psr> = sources
            .iter()
            .zip(values)
            .map(|(s, &v)| s.initialize(epoch, v).unwrap())
            .collect();
        agg.merge(&psrs).unwrap()
    }

    #[test]
    fn exact_sum_end_to_end() {
        let (querier, sources, agg) = full_setup(16, 1);
        let values: Vec<u64> = (0..16).map(|i| 100 + i * 7).collect();
        let expected: u64 = values.iter().sum();
        let final_psr = run_epoch(&sources, &agg, &values, 5);
        let res = querier.evaluate(&final_psr, 5).unwrap();
        assert_eq!(res.sum, expected);
        assert_eq!(res.epoch, 5);
        assert_eq!(res.contributors, 16);
    }

    #[test]
    fn sum_of_zeros_verifies() {
        // Sources failing the WHERE predicate transmit 0 (paper §III-B).
        let (querier, sources, agg) = full_setup(8, 2);
        let final_psr = run_epoch(&sources, &agg, &[0; 8], 1);
        assert_eq!(querier.evaluate(&final_psr, 1).unwrap().sum, 0);
    }

    #[test]
    fn hierarchical_merge_matches_flat_merge() {
        // Figure 1 topology: two level-1 aggregators under one sink.
        let (querier, sources, agg) = full_setup(4, 3);
        let values = [10u64, 20, 30, 40];
        let psrs: Vec<Psr> = sources
            .iter()
            .zip(&values)
            .map(|(s, &v)| s.initialize(9, v).unwrap())
            .collect();
        let left = agg.merge(&psrs[..2]).unwrap();
        let right = agg.merge(&psrs[2..]).unwrap();
        let sink = agg.merge(&[left, right]).unwrap();
        let flat = agg.merge(&psrs).unwrap();
        assert_eq!(sink, flat);
        assert_eq!(querier.evaluate(&sink, 9).unwrap().sum, 100);
    }

    #[test]
    fn tampered_psr_detected() {
        let (querier, sources, agg) = full_setup(8, 4);
        let final_psr = run_epoch(&sources, &agg, &[5; 8], 0);
        // Adversary adds an arbitrary integer to the ciphertext — this is
        // exactly the attack that breaks CMT (paper §II-D).
        let tampered = Psr::from_ciphertext(
            final_psr
                .ciphertext()
                .add_mod(&U256::from_u64(1), querier.params().prime()),
        );
        assert!(matches!(
            querier.evaluate(&tampered, 0),
            Err(SiesError::IntegrityViolation { epoch: 0 })
        ));
    }

    #[test]
    fn dropped_contribution_detected() {
        let (querier, sources, agg) = full_setup(8, 5);
        let psrs: Vec<Psr> = sources
            .iter()
            .map(|s| s.initialize(3, 7).unwrap())
            .collect();
        // A compromised aggregator silently drops one child's PSR.
        let partial = agg.merge(&psrs[..7]).unwrap();
        assert!(querier.evaluate(&partial, 3).is_err());
    }

    #[test]
    fn spurious_injection_detected() {
        let (querier, sources, agg) = full_setup(4, 6);
        let mut psrs: Vec<Psr> = sources
            .iter()
            .map(|s| s.initialize(2, 10).unwrap())
            .collect();
        // Inject a duplicate of source 0's PSR.
        psrs.push(psrs[0]);
        let merged = agg.merge(&psrs).unwrap();
        assert!(querier.evaluate(&merged, 2).is_err());
    }

    #[test]
    fn replayed_epoch_detected() {
        let (querier, sources, agg) = full_setup(8, 7);
        let old = run_epoch(&sources, &agg, &[9; 8], 1);
        // Fresh epoch result exists, but adversary replays epoch 1's PSR.
        let _fresh = run_epoch(&sources, &agg, &[9; 8], 2);
        assert!(querier.evaluate(&old, 2).is_err());
        // The same PSR still verifies for its own epoch.
        assert!(querier.evaluate(&old, 1).is_ok());
    }

    #[test]
    fn node_failure_subset_verification() {
        let (querier, sources, agg) = full_setup(8, 8);
        // Sources 3 and 6 fail; their PSRs never reach the network.
        let contributing: Vec<SourceId> = [0u32, 1, 2, 4, 5, 7].to_vec();
        let psrs: Vec<Psr> = contributing
            .iter()
            .map(|&id| sources[id as usize].initialize(4, 50).unwrap())
            .collect();
        let merged = agg.merge(&psrs).unwrap();
        // Verifying against the full set fails...
        assert!(querier.evaluate(&merged, 4).is_err());
        // ...but succeeds against the reported contributor set.
        let res = querier
            .evaluate_with_contributors(&merged, 4, &contributing)
            .unwrap();
        assert_eq!(res.sum, 300);
        assert_eq!(res.contributors, 6);
    }

    #[test]
    fn unknown_contributor_rejected() {
        let (querier, sources, agg) = full_setup(2, 9);
        let merged = run_epoch(&sources, &agg, &[1, 2], 0);
        assert!(matches!(
            querier.evaluate_with_contributors(&merged, 0, &[0, 5]),
            Err(SiesError::UnknownSource(5))
        ));
    }

    #[test]
    fn psr_wire_round_trip() {
        let (_, sources, _) = full_setup(2, 10);
        let psr = sources[0].initialize(1, 999).unwrap();
        assert_eq!(Psr::from_bytes(&psr.to_bytes()), psr);
        assert_eq!(Psr::wire_size(), 32);
    }

    #[test]
    fn ciphertexts_differ_across_epochs_and_sources() {
        // Freshness and key separation at the ciphertext level.
        let (_, sources, _) = full_setup(2, 11);
        let a = sources[0].initialize(1, 42).unwrap();
        let b = sources[0].initialize(2, 42).unwrap();
        let c = sources[1].initialize(1, 42).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn merge_empty_is_none() {
        let (_, _, agg) = full_setup(2, 12);
        assert!(agg.merge(&[]).is_none());
    }

    #[test]
    fn batched_initialize_matches_serial() {
        // The Montgomery-amortized epoch path must emit bit-identical
        // ciphertexts — this is the scheme-level half of the determinism
        // oracle for the parallel pipeline.
        let (_, sources, _) = full_setup(12, 21);
        for epoch in [0u64, 1, 7, 1_000_003] {
            let cipher = sources[0].epoch_cipher(epoch);
            for (i, s) in sources.iter().enumerate() {
                let v = (i as u64) * 31 + epoch % 97;
                assert_eq!(
                    s.initialize_with(&cipher, epoch, v).unwrap(),
                    s.initialize(epoch, v).unwrap(),
                    "source {i} epoch {epoch}"
                );
            }
            // Every source derives the same K_t, so any source's cipher
            // works for all of them.
            let other = sources[7].epoch_cipher(epoch);
            assert_eq!(
                sources[3].initialize_with(&other, epoch, 55).unwrap(),
                sources[3].initialize(epoch, 55).unwrap()
            );
            // The lane-batched shard initialization is job-wise identical
            // too, including ragged batch sizes (n % 4, n % 8 ≠ 0).
            let jobs: Vec<(&Source, u64)> = sources
                .iter()
                .enumerate()
                .map(|(i, s)| (s, (i as u64) * 31 + epoch % 97))
                .collect();
            for n in [0usize, 1, 5, 12] {
                let batch = Source::initialize_batch(&cipher, epoch, &jobs[..n]);
                assert_eq!(batch.len(), n);
                for (i, got) in batch.iter().enumerate() {
                    assert_eq!(
                        got.as_ref().unwrap(),
                        &sources[i].initialize(epoch, jobs[i].1).unwrap(),
                        "job {i} of {n} epoch {epoch}"
                    );
                }
            }
        }
    }

    #[test]
    fn prewarmed_initialize_matches_serial() {
        // Key material derived ahead of the epoch must produce the same
        // ciphertexts (and the same errors) as on-demand derivation —
        // the core half of the prewarm digest-identity guarantee.
        let (_, sources, _) = full_setup(12, 23);
        for epoch in [0u64, 3, 1_000_003] {
            let keys = Source::derive_epoch_keys(&sources, epoch).unwrap();
            assert_eq!(keys.epoch(), epoch);
            assert_eq!(keys.num_sources(), 12);
            for (i, s) in sources.iter().enumerate() {
                let v = (i as u64) * 17 + epoch % 89;
                assert_eq!(
                    s.initialize_prewarmed(&keys, v).unwrap(),
                    s.initialize(epoch, v).unwrap(),
                    "source {i} epoch {epoch}"
                );
            }
            // Out-of-range readings fail identically on both paths.
            let too_big = u64::MAX;
            assert_eq!(
                sources[4]
                    .initialize_prewarmed(&keys, too_big)
                    .unwrap_err()
                    .to_string(),
                sources[4]
                    .initialize(epoch, too_big)
                    .unwrap_err()
                    .to_string()
            );
        }
        assert!(Source::derive_epoch_keys(&[], 5).is_none());
    }

    #[test]
    fn threaded_evaluation_matches_serial() {
        let (querier, sources, agg) = full_setup(33, 22);
        let contributing: Vec<SourceId> = (0..33).filter(|i| i % 5 != 2).collect();
        let psrs: Vec<Psr> = contributing
            .iter()
            .map(|&id| sources[id as usize].initialize(6, id as u64 + 1).unwrap())
            .collect();
        let merged = agg.merge(&psrs).unwrap();
        let serial = querier
            .evaluate_with_contributors(&merged, 6, &contributing)
            .unwrap();
        for threads in [1, 2, 3, 8, 64] {
            let par = querier
                .evaluate_with_contributors_threaded(&merged, 6, &contributing, threads)
                .unwrap();
            assert_eq!(par, serial, "threads = {threads}");
        }
        // Error results must be identical too — including *which* unknown
        // contributor is reported.
        let bad: Vec<SourceId> = vec![0, 1, 99, 2, 77];
        for threads in [1, 2, 8] {
            assert!(matches!(
                querier.evaluate_with_contributors_threaded(&merged, 6, &bad, threads),
                Err(SiesError::UnknownSource(99))
            ));
        }
    }

    #[test]
    fn batched_epoch_evaluation_matches_serial() {
        let (querier, sources, agg) = full_setup(10, 23);
        let contributors: Vec<SourceId> = (0..10).collect();
        let finals: Vec<(Epoch, Psr)> = (0..12u64)
            .map(|epoch| {
                let values: Vec<u64> = (0..10).map(|i| epoch * 10 + i).collect();
                (epoch, run_epoch(&sources, &agg, &values, epoch))
            })
            .collect();
        // Corrupt one epoch so the batch carries a failure too.
        let mut finals = finals;
        finals[4].1 = Psr::from_ciphertext(
            finals[4]
                .1
                .ciphertext()
                .add_mod(&U256::from_u64(3), querier.params().prime()),
        );
        for threads in [1, 2, 8] {
            let batch = querier.evaluate_epochs_with_contributors(&finals, &contributors, threads);
            for ((epoch, psr), got) in finals.iter().zip(&batch) {
                let serial = querier.evaluate_with_contributors_threaded(
                    psr,
                    *epoch,
                    &contributors,
                    threads,
                );
                match (got, serial) {
                    (Ok(a), Ok(b)) => assert_eq!(*a, b, "epoch {epoch}"),
                    (
                        Err(SiesError::IntegrityViolation { epoch: a }),
                        Err(SiesError::IntegrityViolation { epoch: b }),
                    ) => {
                        assert_eq!(*a, b)
                    }
                    (a, b) => panic!("epoch {epoch}: batch {a:?} vs serial {b:?}"),
                }
            }
            assert!(batch[4].is_err(), "corrupted epoch must fail");
        }
    }

    #[test]
    fn result_overflow_is_detected_not_silent() {
        // 2 sources × u32::MAX overflows the 4-byte result field; the share
        // check must catch the corruption rather than return a wrong sum.
        let (querier, sources, agg) = full_setup(2, 13);
        let psrs: Vec<Psr> = sources
            .iter()
            .map(|s| s.initialize(0, u32::MAX as u64).unwrap())
            .collect();
        let merged = agg.merge(&psrs).unwrap();
        match querier.evaluate(&merged, 0) {
            // Either the padding absorbed it into an integrity failure…
            Err(SiesError::IntegrityViolation { .. }) => {}
            // …or (if it still verified) the sum must be exact anyway.
            Ok(v) => assert_eq!(v.sum, 2 * (u32::MAX as u64)),
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
