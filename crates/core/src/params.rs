//! System parameters: the prime modulus and the `m_{i,t}` message layout.
//!
//! Paper §IV-A, Figure 2: the plaintext is `[ v | ⌈log₂N⌉ zero bits | ss ]`
//! where `v` is 4 bytes (or 8 bytes for applications whose SUM may exceed
//! `2^32 − 1`, footnote 1) and `ss` is a 20-byte secret share. The zero
//! padding absorbs the carry produced when up to `N` shares are summed, so
//! the share field never pollutes the result field.

use crate::error::SiesError;
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;

/// Secret-share width in bits: SHA-1 HMAC output, 20 bytes.
pub const SHARE_BITS: usize = 160;

/// Width of the SUM result field in the plaintext message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultWidth {
    /// 4-byte result field: final SUM must stay below `2^32` (the paper's
    /// default).
    U32,
    /// 8-byte result field for larger sums (paper footnote 1); limits the
    /// padding to 32 bits and therefore `N ≤ 2^32`.
    U64,
}

impl ResultWidth {
    /// Field width in bits.
    pub const fn bits(self) -> usize {
        match self {
            ResultWidth::U32 => 32,
            ResultWidth::U64 => 64,
        }
    }

    /// Largest representable per-source value / final result.
    pub const fn max_value(self) -> u64 {
        match self {
            ResultWidth::U32 => u32::MAX as u64,
            ResultWidth::U64 => u64::MAX,
        }
    }
}

/// Public system parameters shared by the querier, sources, and
/// aggregators. Aggregators only ever use [`Self::prime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemParams {
    prime: U256,
    num_sources: u64,
    pad_bits: usize,
    result_width: ResultWidth,
}

impl SystemParams {
    /// Builds parameters for `num_sources` sources with the default
    /// 256-bit prime and a 4-byte result field.
    pub fn new(num_sources: u64) -> Result<Self, SiesError> {
        Self::with_prime(num_sources, DEFAULT_PRIME_256, ResultWidth::U32)
    }

    /// Builds parameters with an explicit prime and result width.
    ///
    /// Validates the Figure-2 layout: `result_bits + ⌈log₂N⌉ + 160` must
    /// not exceed the prime's bit length.
    pub fn with_prime(
        num_sources: u64,
        prime: U256,
        result_width: ResultWidth,
    ) -> Result<Self, SiesError> {
        if num_sources == 0 {
            return Err(SiesError::InvalidParams(
                "at least one source required".into(),
            ));
        }
        // ⌈log₂ N⌉ without overflow for N near 2^64.
        let pad_bits = (64 - (num_sources - 1).leading_zeros()) as usize;
        let total = result_width.bits() + pad_bits + SHARE_BITS;
        let prime_bits = prime.bit_len();
        if total > prime_bits {
            return Err(SiesError::InvalidParams(format!(
                "message layout needs {total} bits but the modulus has only {prime_bits}"
            )));
        }
        // The homomorphic sum must stay below p: the largest possible
        // aggregate message is < 2^total <= 2^(prime_bits) — require strict
        // room of one bit unless the prime is full-width and larger than
        // any message (checked by comparing against 2^total when it fits).
        if total == prime_bits {
            // p must exceed every possible aggregate, i.e. p > 2^total - 1
            // is impossible; demand one spare bit instead.
            return Err(SiesError::InvalidParams(format!(
                "message layout of {total} bits leaves no headroom below the {prime_bits}-bit modulus"
            )));
        }
        Ok(SystemParams {
            prime,
            num_sources,
            pad_bits,
            result_width,
        })
    }

    /// The public prime modulus `p`.
    pub fn prime(&self) -> &U256 {
        &self.prime
    }

    /// Number of sources `N`.
    pub fn num_sources(&self) -> u64 {
        self.num_sources
    }

    /// Overflow-padding width `⌈log₂ N⌉` in bits.
    pub fn pad_bits(&self) -> usize {
        self.pad_bits
    }

    /// The result-field configuration.
    pub fn result_width(&self) -> ResultWidth {
        self.result_width
    }

    /// Bit offset of the result field inside the 256-bit message:
    /// `share_bits + pad_bits`.
    pub fn result_shift(&self) -> usize {
        SHARE_BITS + self.pad_bits
    }

    /// Wire size of a PSR in bytes (always 32 in this implementation,
    /// matching the paper: the ciphertext is one residue mod a 32-byte
    /// prime).
    pub fn psr_size_bytes(&self) -> usize {
        32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sies_crypto::generate_prime_u256;

    #[test]
    fn default_params_for_paper_sizes() {
        for n in [64u64, 256, 1024, 4096, 16384] {
            let p = SystemParams::new(n).unwrap();
            assert_eq!(p.pad_bits(), (n as f64).log2() as usize);
            assert_eq!(p.result_shift(), 160 + p.pad_bits());
            assert_eq!(p.psr_size_bytes(), 32);
        }
    }

    #[test]
    fn pad_bits_rounds_up_for_non_powers() {
        let p = SystemParams::new(1000).unwrap();
        assert_eq!(p.pad_bits(), 10);
        let p = SystemParams::new(1).unwrap();
        assert_eq!(p.pad_bits(), 0);
        let p = SystemParams::new(3).unwrap();
        assert_eq!(p.pad_bits(), 2);
    }

    #[test]
    fn u32_width_supports_up_to_2_pow_63_sources() {
        // 32 + 63 + 160 = 255 < 256: fine.
        assert!(SystemParams::with_prime(1u64 << 63, DEFAULT_PRIME_256, ResultWidth::U32).is_ok());
        // 32 + 64 + 160 = 256: no headroom.
        assert!(SystemParams::with_prime(u64::MAX, DEFAULT_PRIME_256, ResultWidth::U32).is_err());
    }

    #[test]
    fn u64_width_limits_sources() {
        // 64 + 31 + 160 = 255: ok.
        assert!(SystemParams::with_prime(1u64 << 30, DEFAULT_PRIME_256, ResultWidth::U64).is_ok());
        // 64 + 32 + 160 = 256: rejected.
        assert!(SystemParams::with_prime(1u64 << 32, DEFAULT_PRIME_256, ResultWidth::U64).is_err());
    }

    #[test]
    fn zero_sources_rejected() {
        assert!(SystemParams::new(0).is_err());
    }

    #[test]
    fn small_prime_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = generate_prime_u256(&mut rng, 128);
        assert!(SystemParams::with_prime(1024, small, ResultWidth::U32).is_err());
    }
}
