//! The `m_{i,t}` plaintext codec (paper Figure 2) and final-message
//! decomposition (paper Figure 3).
//!
//! A source's plaintext packs its reading and its secret share into one
//! 256-bit integer:
//!
//! ```text
//!   m_{i,t}  =  v_{i,t} · 2^(160 + pad)   +   ss_{i,t}
//!              └─ result field ─┘ └ pad ┘ └── share field (160 bits) ──┘
//! ```
//!
//! Plain integer addition of `N` such messages keeps the fields separate:
//! the share sums carry into the `⌈log₂N⌉` zero padding but never reach
//! the result field, and the result field accumulates the exact SUM.

use crate::error::SiesError;
use crate::params::SystemParams;
use sies_crypto::u256::U256;

/// A 20-byte secret share `ss_{i,t}` (output of `HM1(k_i, t)`).
pub type SecretShare = [u8; 20];

/// Encodes a source's reading and share into the plaintext message.
///
/// Fails when `value` exceeds the configured result-field width.
pub fn encode_message(
    params: &SystemParams,
    value: u64,
    share: &SecretShare,
) -> Result<U256, SiesError> {
    let max = params.result_width().max_value();
    if value > max {
        return Err(SiesError::ValueTooLarge { value, max });
    }
    let v = U256::from_u64(value).shl(params.result_shift());
    let mut share_bytes = [0u8; 32];
    share_bytes[12..].copy_from_slice(share);
    let ss = U256::from_be_bytes(&share_bytes);
    // Fields are disjoint, so addition == bitwise or here.
    Ok(v.checked_add(&ss).expect("disjoint fields cannot carry"))
}

/// The decomposed final message `m_{f,t}` (paper Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFinal {
    /// The SUM result `res_t` (first field of `m_{f,t}`).
    pub result: u64,
    /// The aggregated secret `s_t = Σ ss_{i,t}`, as an integer occupying
    /// the share field plus the overflow padding.
    pub secret: U256,
}

/// Splits the decrypted final message into `(res_t, s_t)`.
pub fn decode_final(params: &SystemParams, m_f: &U256) -> DecodedFinal {
    let shift = params.result_shift();
    let result = m_f.shr(shift).as_u64();
    let secret = m_f.and(&U256::low_mask(shift));
    DecodedFinal { result, secret }
}

/// Sums secret shares as plain integers (the querier-side reference value
/// `Σ ss_{i,t}`). The sum occupies at most `160 + ⌈log₂N⌉` bits, which by
/// construction fits the share-plus-padding region.
pub fn sum_shares<'a>(shares: impl IntoIterator<Item = &'a SecretShare>) -> U256 {
    let mut acc = U256::ZERO;
    for share in shares {
        let mut bytes = [0u8; 32];
        bytes[12..].copy_from_slice(share);
        let s = U256::from_be_bytes(&bytes);
        acc = acc
            .checked_add(&s)
            .expect("share sum cannot exceed 256 bits");
    }
    acc
}

/// Returns the share encoded by `share` as a [`U256`] (helper shared by
/// tests and the evaluation phase).
pub fn share_to_u256(share: &SecretShare) -> U256 {
    let mut bytes = [0u8; 32];
    bytes[12..].copy_from_slice(share);
    U256::from_be_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ResultWidth, SHARE_BITS};
    use sies_crypto::DEFAULT_PRIME_256;

    fn params(n: u64) -> SystemParams {
        SystemParams::new(n).unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = params(1024);
        let share: SecretShare = [0xAB; 20];
        let m = encode_message(&p, 123_456, &share).unwrap();
        let dec = decode_final(&p, &m);
        assert_eq!(dec.result, 123_456);
        assert_eq!(dec.secret, share_to_u256(&share));
    }

    #[test]
    fn zero_value_and_zero_share() {
        let p = params(4);
        let m = encode_message(&p, 0, &[0; 20]).unwrap();
        assert_eq!(m, U256::ZERO);
        let dec = decode_final(&p, &m);
        assert_eq!(dec.result, 0);
        assert_eq!(dec.secret, U256::ZERO);
    }

    #[test]
    fn value_too_large_rejected() {
        let p = params(1024);
        let err = encode_message(&p, u32::MAX as u64 + 1, &[0; 20]).unwrap_err();
        assert!(matches!(err, SiesError::ValueTooLarge { .. }));
        // But fine under an 8-byte result field.
        let p64 = SystemParams::with_prime(1024, DEFAULT_PRIME_256, ResultWidth::U64).unwrap();
        assert!(encode_message(&p64, u32::MAX as u64 + 1, &[0; 20]).is_ok());
    }

    #[test]
    fn max_value_accepted() {
        let p = params(1024);
        let m = encode_message(&p, u32::MAX as u64, &[0xFF; 20]).unwrap();
        let dec = decode_final(&p, &m);
        assert_eq!(dec.result, u32::MAX as u64);
        assert_eq!(dec.secret, share_to_u256(&[0xFF; 20]));
    }

    #[test]
    fn summed_messages_keep_fields_separate() {
        // The core paper claim: adding N messages never lets the share sum
        // spill into the result field, thanks to the padding.
        let n = 8u64;
        let p = params(n);
        let share: SecretShare = [0xFF; 20]; // worst-case share
        let mut acc = U256::ZERO;
        for _ in 0..n {
            let m = encode_message(&p, 1000, &share).unwrap();
            acc = acc.checked_add(&m).unwrap();
        }
        let dec = decode_final(&p, &acc);
        assert_eq!(dec.result, 8000);
        assert_eq!(
            dec.secret,
            sum_shares(std::iter::repeat_n(&share, n as usize))
        );
    }

    #[test]
    fn share_sum_overflow_confined_to_padding() {
        // With N = 2 and maximal shares the sum needs exactly 161 bits:
        // bit 160 is the first padding bit.
        let s = sum_shares([&[0xFF; 20], &[0xFF; 20]]);
        assert_eq!(s.bit_len(), SHARE_BITS + 1);
    }

    #[test]
    fn different_n_shifts_result_differently() {
        let share = [0x01; 20];
        let m_small = encode_message(&params(2), 7, &share).unwrap();
        let m_large = encode_message(&params(65536), 7, &share).unwrap();
        assert_ne!(m_small, m_large);
        assert_eq!(decode_final(&params(2), &m_small).result, 7);
        assert_eq!(decode_final(&params(65536), &m_large).result, 7);
    }
}
