//! Forward-secure key evolution for long-lived deployments.
//!
//! The paper's setup phase registers long-term keys `K, k_i` once and the
//! threat model accepts that a compromised source leaks *its own* future
//! readings. What a careful deployment can still protect is the **past**:
//! if keys evolve through a one-way function per generation, a node
//! captured in generation `g` yields `K^{(g)}` but not `K^{(g-1)}` — every
//! epoch already reported remains confidential and unforgeable.
//!
//! `K^{(g+1)} = HM256(K^{(g)}, "sies-keygen-evolve")`, truncated to the
//! 20-byte long-term key size. Both end-points evolve in lock-step on a
//! fixed epoch schedule, so no messages are exchanged.

use crate::error::Epoch;
use crate::scheme::{LongTermKey, KEY_BYTES};
use sies_crypto::prf;
use sies_telemetry as tel;

/// Domain-separation label for the evolution step.
const EVOLVE_LABEL: &[u8] = b"sies-keygen-evolve";

/// A long-term key that evolves one-way across generations.
#[derive(Clone)]
pub struct EvolvingKey {
    key: LongTermKey,
    generation: u64,
}

impl EvolvingKey {
    /// Wraps a freshly registered generation-0 key.
    pub fn new(key: LongTermKey) -> Self {
        EvolvingKey { key, generation: 0 }
    }

    /// Current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current key material.
    pub fn key(&self) -> &LongTermKey {
        &self.key
    }

    /// Advances one generation in place (destroying the old key, which is
    /// the point: it can no longer be extracted from this state).
    pub fn evolve(&mut self) {
        let digest = prf::hm256(&self.key, EVOLVE_LABEL);
        self.key.copy_from_slice(&digest[..KEY_BYTES]);
        self.generation += 1;
    }

    /// Advances to `generation` (must not go backward — that is exactly
    /// what the one-way function forbids).
    pub fn evolve_to(&mut self, generation: u64) {
        assert!(
            generation >= self.generation,
            "cannot evolve backward from {} to {generation}",
            self.generation
        );
        while self.generation < generation {
            self.evolve();
        }
    }
}

/// Maps epochs to key generations: a new generation every
/// `epochs_per_generation` epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationSchedule {
    /// Window length in epochs (≥ 1).
    pub epochs_per_generation: u64,
}

impl RotationSchedule {
    /// Creates a schedule. Panics for a zero window.
    pub fn new(epochs_per_generation: u64) -> Self {
        assert!(
            epochs_per_generation >= 1,
            "window must be at least one epoch"
        );
        RotationSchedule {
            epochs_per_generation,
        }
    }

    /// The generation governing `epoch`.
    pub fn generation_for(&self, epoch: Epoch) -> u64 {
        epoch / self.epochs_per_generation
    }

    /// Brings a key up to date for `epoch` and returns the key material
    /// to use (a convenience combining schedule and evolution).
    pub fn key_for<'k>(&self, key: &'k mut EvolvingKey, epoch: Epoch) -> &'k LongTermKey {
        key.evolve_to(self.generation_for(epoch));
        key.key()
    }
}

/// A versioned rotation announcement, broadcast by the querier (over the
/// μTesla channel, so it arrives authenticated — see [`crate::mutesla`]).
///
/// Carrying the absolute target generation (not "rotate once") is what
/// makes dropped announcements tolerable: a node that missed any number
/// of announcements jumps straight to the advertised generation through
/// the one-way evolution, and a retried duplicate is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyAnnouncement {
    /// The generation every endpoint must reach.
    pub generation: u64,
    /// First epoch governed by that generation.
    pub effective_epoch: Epoch,
}

/// A follower's acknowledgement of a rotation announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RekeyAck {
    /// The generation the follower now holds.
    pub generation: u64,
}

/// The node-side endpoint of the rotation protocol.
pub struct RekeyFollower {
    key: EvolvingKey,
}

impl RekeyFollower {
    /// Wraps a node's evolving key.
    pub fn new(key: EvolvingKey) -> Self {
        RekeyFollower { key }
    }

    /// Current generation.
    pub fn generation(&self) -> u64 {
        self.key.generation()
    }

    /// Current key material.
    pub fn key(&self) -> &LongTermKey {
        self.key.key()
    }

    /// Handles a (possibly retried, possibly out-of-order) announcement.
    /// Announcements for generations at or below the current one never
    /// roll the key back — the follower just re-acks its position, which
    /// also makes coordinator retries idempotent.
    pub fn on_announce(&mut self, ann: &RekeyAnnouncement) -> RekeyAck {
        if ann.generation > self.key.generation() {
            self.key.evolve_to(ann.generation);
        }
        RekeyAck {
            generation: self.key.generation(),
        }
    }
}

/// The querier-side endpoint: announces rotations on the schedule and
/// retries until every follower has acknowledged the target generation.
pub struct RekeyCoordinator {
    schedule: RotationSchedule,
    /// Highest generation acknowledged by each follower.
    acked: Vec<u64>,
    target: u64,
}

impl RekeyCoordinator {
    /// Creates a coordinator for `num_followers` generation-0 endpoints.
    pub fn new(schedule: RotationSchedule, num_followers: usize) -> Self {
        RekeyCoordinator {
            schedule,
            acked: vec![0; num_followers],
            target: 0,
        }
    }

    /// The generation currently being rolled out.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Advances the rollout target for `epoch` and returns the
    /// announcement to broadcast (also the one to *re*-broadcast to
    /// laggards — it is idempotent).
    pub fn announce_for(&mut self, epoch: Epoch) -> RekeyAnnouncement {
        let generation = self.schedule.generation_for(epoch);
        if generation > self.target {
            self.target = generation;
        } else if self.target > 0 {
            // Same target announced again: this is a laggard re-broadcast.
            let laggards = self.acked.iter().filter(|&&g| g < self.target).count();
            if laggards > 0 {
                tel::count!("core.rekey.retries");
                tel::event(
                    epoch,
                    tel::EventKind::RekeyRetry,
                    self.target,
                    laggards as u64,
                );
            }
        }
        RekeyAnnouncement {
            generation: self.target,
            effective_epoch: self.target * self.schedule.epochs_per_generation,
        }
    }

    /// Records a follower's acknowledgement. Stale acks (from retried
    /// announcements crossing on the wire) never regress the record.
    pub fn on_ack(&mut self, follower: usize, ack: RekeyAck) {
        if ack.generation > self.acked[follower] {
            self.acked[follower] = ack.generation;
        }
    }

    /// Followers that have not yet acknowledged the target generation —
    /// the retry set for the next re-broadcast.
    pub fn laggards(&self) -> Vec<usize> {
        self.acked
            .iter()
            .enumerate()
            .filter(|(_, &g)| g < self.target)
            .map(|(i, _)| i)
            .collect()
    }

    /// True when every follower holds the target generation.
    pub fn all_current(&self) -> bool {
        self.laggards().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> LongTermKey {
        [0x5A; KEY_BYTES]
    }

    #[test]
    fn evolution_is_deterministic_and_changes_key() {
        let mut a = EvolvingKey::new(base());
        let mut b = EvolvingKey::new(base());
        a.evolve();
        b.evolve();
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), &base());
        assert_eq!(a.generation(), 1);
    }

    #[test]
    fn distinct_generations_have_distinct_keys() {
        let mut k = EvolvingKey::new(base());
        let mut seen = std::collections::HashSet::new();
        seen.insert(*k.key());
        for _ in 0..100 {
            k.evolve();
            assert!(
                seen.insert(*k.key()),
                "generation collision at {}",
                k.generation()
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward")]
    fn backward_evolution_rejected() {
        let mut k = EvolvingKey::new(base());
        k.evolve_to(5);
        k.evolve_to(3);
    }

    #[test]
    fn schedule_maps_epochs_to_generations() {
        let s = RotationSchedule::new(10);
        assert_eq!(s.generation_for(0), 0);
        assert_eq!(s.generation_for(9), 0);
        assert_eq!(s.generation_for(10), 1);
        assert_eq!(s.generation_for(105), 10);
    }

    #[test]
    fn key_for_advances_lazily() {
        let s = RotationSchedule::new(4);
        let mut k = EvolvingKey::new(base());
        let g0 = *s.key_for(&mut k, 3);
        assert_eq!(k.generation(), 0);
        let g1 = *s.key_for(&mut k, 4);
        assert_eq!(k.generation(), 1);
        assert_ne!(g0, g1);
        // Same window, same key.
        assert_eq!(s.key_for(&mut k, 7), &g1);
    }

    #[test]
    fn both_endpoints_stay_in_sync_through_sies() {
        // Source and querier evolve independently yet agree: run SIES
        // with generation-g keys on both sides.
        use crate::params::SystemParams;
        use crate::scheme::{setup, Source};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schedule = RotationSchedule::new(5);
        // Model rotation by re-running setup with evolved master entropy:
        // both sides derive the same generation-g deployment.
        for generation in 0..3u64 {
            let mut master = EvolvingKey::new([9; KEY_BYTES]);
            master.evolve_to(generation);
            let seed = u64::from_be_bytes(master.key()[..8].try_into().unwrap());
            let mut gen_rng = StdRng::seed_from_u64(seed);
            let params = SystemParams::new(4).unwrap();
            let (querier, creds, aggregator) = setup(&mut gen_rng, params);
            let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
            let epoch = generation * schedule.epochs_per_generation;
            let psrs: Vec<_> = sources
                .iter()
                .map(|s| s.initialize(epoch, 10).unwrap())
                .collect();
            let final_psr = aggregator.merge(&psrs).unwrap();
            assert_eq!(querier.evaluate(&final_psr, epoch).unwrap().sum, 40);
        }
        let _ = schedule;
    }

    #[test]
    fn missed_announcements_recovered_from_one_later_announce() {
        // The follower misses the announcements for generations 1 and 2;
        // the versioned announce for generation 3 catches it up in one
        // hop, and its key matches a peer that heard every one.
        let mut lossy = RekeyFollower::new(EvolvingKey::new(base()));
        let mut reliable = RekeyFollower::new(EvolvingKey::new(base()));
        let schedule = RotationSchedule::new(10);
        let mut coord = RekeyCoordinator::new(schedule, 2);
        for epoch in [10u64, 20, 30] {
            let ann = coord.announce_for(epoch);
            let ack = reliable.on_announce(&ann);
            coord.on_ack(1, ack);
            if epoch == 30 {
                let ack = lossy.on_announce(&ann); // first one it hears
                coord.on_ack(0, ack);
            }
        }
        assert_eq!(lossy.generation(), 3);
        assert_eq!(lossy.key(), reliable.key());
        assert!(coord.all_current());
    }

    #[test]
    fn retried_announcement_is_idempotent() {
        let mut f = RekeyFollower::new(EvolvingKey::new(base()));
        let ann = RekeyAnnouncement {
            generation: 2,
            effective_epoch: 20,
        };
        let first = f.on_announce(&ann);
        let key_after_first = *f.key();
        let retry = f.on_announce(&ann);
        assert_eq!(first, retry);
        assert_eq!(f.key(), &key_after_first);
        assert_eq!(f.generation(), 2);
    }

    #[test]
    fn stale_announcement_never_rolls_back() {
        let mut f = RekeyFollower::new(EvolvingKey::new(base()));
        f.on_announce(&RekeyAnnouncement {
            generation: 5,
            effective_epoch: 50,
        });
        let key = *f.key();
        let ack = f.on_announce(&RekeyAnnouncement {
            generation: 2,
            effective_epoch: 20,
        });
        assert_eq!(f.generation(), 5, "rollback must be refused");
        assert_eq!(f.key(), &key);
        assert_eq!(ack.generation, 5, "re-ack reports the real position");
    }

    #[test]
    fn coordinator_retries_until_all_current() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let schedule = RotationSchedule::new(5);
        let mut coord = RekeyCoordinator::new(schedule, 8);
        let mut followers: Vec<RekeyFollower> = (0..8)
            .map(|_| RekeyFollower::new(EvolvingKey::new(base())))
            .collect();
        let ann = coord.announce_for(25); // target generation 5
        assert_eq!(ann.generation, 5);
        assert_eq!(coord.laggards().len(), 8);
        // Each delivery attempt independently drops with probability 0.5;
        // the coordinator re-broadcasts to laggards until none remain.
        let mut rounds = 0;
        while !coord.all_current() {
            rounds += 1;
            assert!(rounds < 100, "retry loop failed to converge");
            for i in coord.laggards() {
                if rng.random_range(0.0..1.0) < 0.5 {
                    continue; // announcement lost
                }
                let ack = followers[i].on_announce(&ann);
                if rng.random_range(0.0..1.0) < 0.5 {
                    continue; // ack lost: follower already rotated, re-ack next round
                }
                coord.on_ack(i, ack);
            }
        }
        assert!(rounds > 1, "seed should exercise at least one retry");
        for f in &followers {
            assert_eq!(f.generation(), 5);
        }
    }

    #[test]
    fn stale_ack_never_regresses_coordinator() {
        let mut coord = RekeyCoordinator::new(RotationSchedule::new(10), 1);
        coord.announce_for(30);
        coord.on_ack(0, RekeyAck { generation: 3 });
        coord.on_ack(0, RekeyAck { generation: 1 }); // late duplicate
        assert!(coord.all_current());
    }

    #[test]
    fn forward_security_property() {
        // Knowing generation g's key lets you compute g+1 (and the node is
        // compromised going forward anyway) but the *previous* key is not
        // recoverable: verify there is no shortcut by checking that
        // evolving the captured key never reproduces an earlier one.
        let mut timeline = Vec::new();
        let mut k = EvolvingKey::new(base());
        for _ in 0..20 {
            timeline.push(*k.key());
            k.evolve();
        }
        // "Capture" at generation 10 and roll forward 50 steps: none of
        // the earlier keys may reappear.
        let mut captured = EvolvingKey::new(timeline[10]);
        for _ in 0..50 {
            captured.evolve();
            assert!(
                !timeline[..10].contains(captured.key()),
                "one-way chain looped back into the past"
            );
        }
    }
}
