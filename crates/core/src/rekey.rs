//! Forward-secure key evolution for long-lived deployments.
//!
//! The paper's setup phase registers long-term keys `K, k_i` once and the
//! threat model accepts that a compromised source leaks *its own* future
//! readings. What a careful deployment can still protect is the **past**:
//! if keys evolve through a one-way function per generation, a node
//! captured in generation `g` yields `K^{(g)}` but not `K^{(g-1)}` — every
//! epoch already reported remains confidential and unforgeable.
//!
//! `K^{(g+1)} = HM256(K^{(g)}, "sies-keygen-evolve")`, truncated to the
//! 20-byte long-term key size. Both end-points evolve in lock-step on a
//! fixed epoch schedule, so no messages are exchanged.

use crate::error::Epoch;
use crate::scheme::{LongTermKey, KEY_BYTES};
use sies_crypto::prf;

/// Domain-separation label for the evolution step.
const EVOLVE_LABEL: &[u8] = b"sies-keygen-evolve";

/// A long-term key that evolves one-way across generations.
#[derive(Clone)]
pub struct EvolvingKey {
    key: LongTermKey,
    generation: u64,
}

impl EvolvingKey {
    /// Wraps a freshly registered generation-0 key.
    pub fn new(key: LongTermKey) -> Self {
        EvolvingKey { key, generation: 0 }
    }

    /// Current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current key material.
    pub fn key(&self) -> &LongTermKey {
        &self.key
    }

    /// Advances one generation in place (destroying the old key, which is
    /// the point: it can no longer be extracted from this state).
    pub fn evolve(&mut self) {
        let digest = prf::hm256(&self.key, EVOLVE_LABEL);
        self.key.copy_from_slice(&digest[..KEY_BYTES]);
        self.generation += 1;
    }

    /// Advances to `generation` (must not go backward — that is exactly
    /// what the one-way function forbids).
    pub fn evolve_to(&mut self, generation: u64) {
        assert!(
            generation >= self.generation,
            "cannot evolve backward from {} to {generation}",
            self.generation
        );
        while self.generation < generation {
            self.evolve();
        }
    }
}

/// Maps epochs to key generations: a new generation every
/// `epochs_per_generation` epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationSchedule {
    /// Window length in epochs (≥ 1).
    pub epochs_per_generation: u64,
}

impl RotationSchedule {
    /// Creates a schedule. Panics for a zero window.
    pub fn new(epochs_per_generation: u64) -> Self {
        assert!(epochs_per_generation >= 1, "window must be at least one epoch");
        RotationSchedule { epochs_per_generation }
    }

    /// The generation governing `epoch`.
    pub fn generation_for(&self, epoch: Epoch) -> u64 {
        epoch / self.epochs_per_generation
    }

    /// Brings a key up to date for `epoch` and returns the key material
    /// to use (a convenience combining schedule and evolution).
    pub fn key_for<'k>(&self, key: &'k mut EvolvingKey, epoch: Epoch) -> &'k LongTermKey {
        key.evolve_to(self.generation_for(epoch));
        key.key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> LongTermKey {
        [0x5A; KEY_BYTES]
    }

    #[test]
    fn evolution_is_deterministic_and_changes_key() {
        let mut a = EvolvingKey::new(base());
        let mut b = EvolvingKey::new(base());
        a.evolve();
        b.evolve();
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), &base());
        assert_eq!(a.generation(), 1);
    }

    #[test]
    fn distinct_generations_have_distinct_keys() {
        let mut k = EvolvingKey::new(base());
        let mut seen = std::collections::HashSet::new();
        seen.insert(*k.key());
        for _ in 0..100 {
            k.evolve();
            assert!(seen.insert(*k.key()), "generation collision at {}", k.generation());
        }
    }

    #[test]
    #[should_panic(expected = "backward")]
    fn backward_evolution_rejected() {
        let mut k = EvolvingKey::new(base());
        k.evolve_to(5);
        k.evolve_to(3);
    }

    #[test]
    fn schedule_maps_epochs_to_generations() {
        let s = RotationSchedule::new(10);
        assert_eq!(s.generation_for(0), 0);
        assert_eq!(s.generation_for(9), 0);
        assert_eq!(s.generation_for(10), 1);
        assert_eq!(s.generation_for(105), 10);
    }

    #[test]
    fn key_for_advances_lazily() {
        let s = RotationSchedule::new(4);
        let mut k = EvolvingKey::new(base());
        let g0 = *s.key_for(&mut k, 3);
        assert_eq!(k.generation(), 0);
        let g1 = *s.key_for(&mut k, 4);
        assert_eq!(k.generation(), 1);
        assert_ne!(g0, g1);
        // Same window, same key.
        assert_eq!(s.key_for(&mut k, 7), &g1);
    }

    #[test]
    fn both_endpoints_stay_in_sync_through_sies() {
        // Source and querier evolve independently yet agree: run SIES
        // with generation-g keys on both sides.
        use crate::params::SystemParams;
        use crate::scheme::{setup, Source};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let schedule = RotationSchedule::new(5);
        // Model rotation by re-running setup with evolved master entropy:
        // both sides derive the same generation-g deployment.
        for generation in 0..3u64 {
            let mut master = EvolvingKey::new([9; KEY_BYTES]);
            master.evolve_to(generation);
            let seed = u64::from_be_bytes(master.key()[..8].try_into().unwrap());
            let mut gen_rng = StdRng::seed_from_u64(seed);
            let params = SystemParams::new(4).unwrap();
            let (querier, creds, aggregator) = setup(&mut gen_rng, params);
            let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
            let epoch = generation * schedule.epochs_per_generation;
            let psrs: Vec<_> =
                sources.iter().map(|s| s.initialize(epoch, 10).unwrap()).collect();
            let final_psr = aggregator.merge(&psrs).unwrap();
            assert_eq!(querier.evaluate(&final_psr, epoch).unwrap().sum, 40);
        }
        let _ = schedule;
    }

    #[test]
    fn forward_security_property() {
        // Knowing generation g's key lets you compute g+1 (and the node is
        // compromised going forward anyway) but the *previous* key is not
        // recoverable: verify there is no shortcut by checking that
        // evolving the captured key never reproduces an earlier one.
        let mut timeline = Vec::new();
        let mut k = EvolvingKey::new(base());
        for _ in 0..20 {
            timeline.push(*k.key());
            k.evolve();
        }
        // "Capture" at generation 10 and roll forward 50 steps: none of
        // the earlier keys may reappear.
        let mut captured = EvolvingKey::new(timeline[10]);
        for _ in 0..50 {
            captured.evolve();
            assert!(
                !timeline[..10].contains(captured.key()),
                "one-way chain looped back into the past"
            );
        }
    }
}
