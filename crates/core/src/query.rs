//! The paper's query model (§III-B): push-based continuous aggregate
//! queries of the form
//!
//! ```sql
//! SELECT SUM(attr) FROM Sensors WHERE pred EPOCH DURATION T
//! ```
//!
//! COUNT reduces trivially to SUM (transmit 1 when the predicate holds);
//! AVG = SUM/COUNT; VARIANCE and STDDEV follow from SUM(x²), SUM(x) and
//! COUNT. A [`QueryPlan`] expands a derived aggregate into its constituent
//! SUM sub-queries, each of which runs as an independent SIES instance, and
//! a finalizer combines the verified sub-results.

use crate::error::SiesError;

/// Sensor attributes, mirroring the Intel Lab dataset's channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attribute {
    /// Temperature (the paper's experimental attribute).
    Temperature,
    /// Relative humidity.
    Humidity,
    /// Light level.
    Light,
    /// Battery voltage.
    Voltage,
}

impl Attribute {
    const ALL: [Attribute; 4] = [
        Attribute::Temperature,
        Attribute::Humidity,
        Attribute::Light,
        Attribute::Voltage,
    ];

    fn index(self) -> usize {
        match self {
            Attribute::Temperature => 0,
            Attribute::Humidity => 1,
            Attribute::Light => 2,
            Attribute::Voltage => 3,
        }
    }
}

/// One epoch's sensor reading: all attributes as scaled non-negative
/// integers (the paper encodes "other data types as positive integers via
/// simple translation and scaling").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SensorReading {
    values: [u64; 4],
}

impl SensorReading {
    /// Creates a reading with every attribute set.
    pub fn new(temperature: u64, humidity: u64, light: u64, voltage: u64) -> Self {
        SensorReading {
            values: [temperature, humidity, light, voltage],
        }
    }

    /// Creates a temperature-only reading (other attributes zero).
    pub fn temperature(value: u64) -> Self {
        SensorReading {
            values: [value, 0, 0, 0],
        }
    }

    /// The stored value of `attr`.
    pub fn get(&self, attr: Attribute) -> u64 {
        self.values[attr.index()]
    }

    /// Sets the value of `attr`.
    pub fn set(&mut self, attr: Attribute, value: u64) {
        self.values[attr.index()] = value;
    }
}

/// Comparison operators for predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `attr < c`
    Lt,
    /// `attr <= c`
    Le,
    /// `attr > c`
    Gt,
    /// `attr >= c`
    Ge,
    /// `attr = c`
    Eq,
    /// `attr != c`
    Ne,
}

/// The WHERE clause: a boolean combination of attribute comparisons,
/// evaluated locally at each source. Sources whose reading fails the
/// predicate transmit 0 (paper §III-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true (no WHERE clause).
    True,
    /// `attr op constant`.
    Cmp(Attribute, CmpOp, u64),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluates against a reading.
    pub fn eval(&self, reading: &SensorReading) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Cmp(attr, op, c) => {
                let v = reading.get(*attr);
                match op {
                    CmpOp::Lt => v < *c,
                    CmpOp::Le => v <= *c,
                    CmpOp::Gt => v > *c,
                    CmpOp::Ge => v >= *c,
                    CmpOp::Eq => v == *c,
                    CmpOp::Ne => v != *c,
                }
            }
            Predicate::And(a, b) => a.eval(reading) && b.eval(reading),
            Predicate::Or(a, b) => a.eval(reading) || b.eval(reading),
            Predicate::Not(a) => !a.eval(reading),
        }
    }

    /// `a AND b` convenience constructor.
    pub fn and(a: Predicate, b: Predicate) -> Predicate {
        Predicate::And(Box::new(a), Box::new(b))
    }

    /// `a OR b` convenience constructor.
    pub fn or(a: Predicate, b: Predicate) -> Predicate {
        Predicate::Or(Box::new(a), Box::new(b))
    }
}

/// Supported aggregate functions. SUM and COUNT are primitive; the rest
/// derive from them (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Exact SUM over an attribute.
    Sum(Attribute),
    /// Number of sources satisfying the predicate.
    Count,
    /// SUM / COUNT.
    Avg(Attribute),
    /// Population variance `E[x²] − E[x]²`.
    Variance(Attribute),
    /// `√Variance`.
    StdDev(Attribute),
}

/// What a source transmits for one SUM sub-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SumTerm {
    /// The attribute value itself.
    Value(Attribute),
    /// The squared attribute value (for moments).
    ValueSquared(Attribute),
    /// The constant 1 (COUNT).
    One,
}

impl SumTerm {
    /// The value this term contributes for a reading that satisfies the
    /// predicate.
    pub fn apply(&self, reading: &SensorReading) -> u64 {
        match self {
            SumTerm::Value(a) => reading.get(*a),
            SumTerm::ValueSquared(a) => {
                let v = reading.get(*a);
                v.checked_mul(v).expect("squared value overflows u64")
            }
            SumTerm::One => 1,
        }
    }
}

/// A registered continuous query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The aggregate function.
    pub aggregate: Aggregate,
    /// The WHERE clause.
    pub predicate: Predicate,
    /// Epoch duration `T` in milliseconds (drives the epoch schedule; the
    /// simulator treats each epoch as a discrete instant, like the paper).
    pub epoch_duration_ms: u64,
}

impl Query {
    /// A `SELECT SUM(attr)` query without a WHERE clause.
    pub fn sum(attr: Attribute) -> Self {
        Query {
            aggregate: Aggregate::Sum(attr),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        }
    }

    /// Attaches a WHERE clause.
    pub fn filter(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Compiles the query into its SUM sub-queries.
    pub fn plan(&self) -> QueryPlan {
        let terms = match self.aggregate {
            Aggregate::Sum(a) => vec![SumTerm::Value(a)],
            Aggregate::Count => vec![SumTerm::One],
            Aggregate::Avg(a) => vec![SumTerm::Value(a), SumTerm::One],
            Aggregate::Variance(a) | Aggregate::StdDev(a) => {
                vec![SumTerm::ValueSquared(a), SumTerm::Value(a), SumTerm::One]
            }
        };
        QueryPlan {
            aggregate: self.aggregate,
            predicate: self.predicate.clone(),
            terms,
        }
    }
}

/// The compiled form: one SIES instance per [`SumTerm`].
#[derive(Debug, Clone)]
pub struct QueryPlan {
    aggregate: Aggregate,
    predicate: Predicate,
    terms: Vec<SumTerm>,
}

/// The finalized, verified answer of a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryResult {
    /// Exact integer result (SUM, COUNT).
    Exact(u64),
    /// Real-valued derived result (AVG, VARIANCE, STDDEV).
    Real(f64),
}

impl QueryPlan {
    /// The SUM sub-queries, in the order their results must be supplied to
    /// [`Self::finalize`].
    pub fn terms(&self) -> &[SumTerm] {
        &self.terms
    }

    /// Values a source transmits this epoch: one per sub-query, all zero
    /// when the reading fails the predicate.
    pub fn source_values(&self, reading: &SensorReading) -> Vec<u64> {
        if !self.predicate.eval(reading) {
            return vec![0; self.terms.len()];
        }
        self.terms.iter().map(|t| t.apply(reading)).collect()
    }

    /// Combines the verified sub-query SUMs into the final answer.
    ///
    /// Fails with [`SiesError::InvalidParams`] when the number of results
    /// does not match the plan, and yields `Real(f64::NAN)` for AVG-style
    /// aggregates over an empty (COUNT = 0) population.
    pub fn finalize(&self, sums: &[u64]) -> Result<QueryResult, SiesError> {
        if sums.len() != self.terms.len() {
            return Err(SiesError::InvalidParams(format!(
                "plan expects {} sub-results, got {}",
                self.terms.len(),
                sums.len()
            )));
        }
        Ok(match self.aggregate {
            Aggregate::Sum(_) | Aggregate::Count => QueryResult::Exact(sums[0]),
            Aggregate::Avg(_) => {
                let (sum, count) = (sums[0] as f64, sums[1] as f64);
                QueryResult::Real(sum / count)
            }
            Aggregate::Variance(_) | Aggregate::StdDev(_) => {
                let (sq, sum, count) = (sums[0] as f64, sums[1] as f64, sums[2] as f64);
                let mean = sum / count;
                let var = sq / count - mean * mean;
                // Guard tiny negative values from floating rounding.
                let var = var.max(0.0);
                match self.aggregate {
                    Aggregate::StdDev(_) => QueryResult::Real(var.sqrt()),
                    _ => QueryResult::Real(var),
                }
            }
        })
    }
}

/// Exhaustive list of attributes (for workload generators).
pub fn all_attributes() -> [Attribute; 4] {
    Attribute::ALL
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(t: u64) -> SensorReading {
        SensorReading::new(t, 40, 300, 2700)
    }

    #[test]
    fn predicate_comparisons() {
        let r = reading(25);
        use CmpOp::*;
        assert!(Predicate::Cmp(Attribute::Temperature, Lt, 30).eval(&r));
        assert!(!Predicate::Cmp(Attribute::Temperature, Gt, 30).eval(&r));
        assert!(Predicate::Cmp(Attribute::Temperature, Ge, 25).eval(&r));
        assert!(Predicate::Cmp(Attribute::Temperature, Le, 25).eval(&r));
        assert!(Predicate::Cmp(Attribute::Temperature, Eq, 25).eval(&r));
        assert!(Predicate::Cmp(Attribute::Temperature, Ne, 24).eval(&r));
    }

    #[test]
    fn predicate_combinators() {
        let r = reading(25);
        let hot = Predicate::Cmp(Attribute::Temperature, CmpOp::Gt, 20);
        let humid = Predicate::Cmp(Attribute::Humidity, CmpOp::Gt, 50);
        assert!(Predicate::and(hot.clone(), Predicate::Not(Box::new(humid.clone()))).eval(&r));
        assert!(Predicate::or(humid.clone(), hot.clone()).eval(&r));
        assert!(!Predicate::and(hot, humid).eval(&r));
        assert!(Predicate::True.eval(&r));
    }

    #[test]
    fn sum_plan_single_term() {
        let q = Query::sum(Attribute::Temperature);
        let plan = q.plan();
        assert_eq!(plan.terms(), &[SumTerm::Value(Attribute::Temperature)]);
        assert_eq!(plan.source_values(&reading(42)), vec![42]);
        assert_eq!(plan.finalize(&[4200]).unwrap(), QueryResult::Exact(4200));
    }

    #[test]
    fn predicate_failing_source_transmits_zero() {
        let q = Query::sum(Attribute::Temperature).filter(Predicate::Cmp(
            Attribute::Temperature,
            CmpOp::Gt,
            100,
        ));
        let plan = q.plan();
        assert_eq!(plan.source_values(&reading(42)), vec![0]);
        assert_eq!(plan.source_values(&reading(200)), vec![200]);
    }

    #[test]
    fn count_plan() {
        let q = Query {
            aggregate: Aggregate::Count,
            predicate: Predicate::Cmp(Attribute::Temperature, CmpOp::Ge, 20),
            epoch_duration_ms: 500,
        };
        let plan = q.plan();
        assert_eq!(plan.source_values(&reading(25)), vec![1]);
        assert_eq!(plan.source_values(&reading(15)), vec![0]);
        assert_eq!(plan.finalize(&[17]).unwrap(), QueryResult::Exact(17));
    }

    #[test]
    fn avg_plan_combines_sum_and_count() {
        let q = Query {
            aggregate: Aggregate::Avg(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        let plan = q.plan();
        assert_eq!(plan.terms().len(), 2);
        assert_eq!(plan.source_values(&reading(30)), vec![30, 1]);
        match plan.finalize(&[300, 10]).unwrap() {
            QueryResult::Real(v) => assert!((v - 30.0).abs() < 1e-9),
            other => panic!("expected Real, got {other:?}"),
        }
    }

    #[test]
    fn variance_and_stddev() {
        // Population {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, variance 4, stddev 2.
        let values = [2u64, 4, 4, 4, 5, 5, 7, 9];
        let q = Query {
            aggregate: Aggregate::Variance(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        let plan = q.plan();
        let mut sums = [0u64; 3];
        for &v in &values {
            let contrib = plan.source_values(&reading(v));
            for (s, c) in sums.iter_mut().zip(&contrib) {
                *s += c;
            }
        }
        match plan.finalize(&sums).unwrap() {
            QueryResult::Real(v) => assert!((v - 4.0).abs() < 1e-9),
            other => panic!("expected Real, got {other:?}"),
        }
        let q = Query {
            aggregate: Aggregate::StdDev(Attribute::Temperature),
            predicate: Predicate::True,
            epoch_duration_ms: 1000,
        };
        match q.plan().finalize(&sums).unwrap() {
            QueryResult::Real(v) => assert!((v - 2.0).abs() < 1e-9),
            other => panic!("expected Real, got {other:?}"),
        }
    }

    #[test]
    fn finalize_arity_mismatch() {
        let plan = Query::sum(Attribute::Temperature).plan();
        assert!(plan.finalize(&[1, 2]).is_err());
    }

    #[test]
    fn reading_accessors() {
        let mut r = SensorReading::default();
        r.set(Attribute::Light, 555);
        assert_eq!(r.get(Attribute::Light), 555);
        assert_eq!(r.get(Attribute::Voltage), 0);
        assert_eq!(SensorReading::temperature(9).get(Attribute::Temperature), 9);
    }
}
