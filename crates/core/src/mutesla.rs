//! A μTesla-style authenticated broadcast (Perrig et al., SPINS) used by
//! the querier to disseminate queries (paper §IV-A setup phase and
//! Theorem 3: querier-impersonation resistance).
//!
//! The broadcaster commits to a one-way hash chain `K_0 ← H(K_1) ← … ←
//! H(K_n)`. During interval `i` it MACs packets with a key derived from
//! `K_i`, and discloses `K_i` only `d` intervals later. Receivers buffer
//! packets and verify them once the key arrives, checking that the
//! disclosed key hashes back to the last authenticated chain element.
//!
//! This module is an in-memory simulation: loose time synchronization is
//! modelled by the receiver tracking the current interval and enforcing
//! the *security condition* — a packet is accepted into the buffer only if
//! its key cannot have been disclosed yet.

use crate::error::SiesError;
use rand::RngCore;
use sies_crypto::hash::HashFunction;
use sies_crypto::hmac::{ct_eq, hmac, hmac_many};
use sies_crypto::sha256::Sha256;
use sies_telemetry as tel;

/// A chain key (SHA-256 output).
pub type ChainKey = [u8; 32];

/// A broadcast packet: payload, MAC, and the interval whose key MACed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The broadcast payload (e.g. a serialized query).
    pub payload: Vec<u8>,
    /// `HMAC-SHA256(K'_i, payload)`.
    pub mac: [u8; 32],
    /// The sending interval `i`.
    pub interval: u64,
}

/// A key-disclosure message for interval `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disclosure {
    /// The interval whose key is being disclosed.
    pub interval: u64,
    /// The chain key `K_i`.
    pub key: ChainKey,
}

/// Derives the per-interval MAC key `K'_i` from the chain key `K_i`,
/// keeping MAC use domain-separated from chain hashing.
fn mac_key(chain_key: &ChainKey) -> [u8; 32] {
    hmac::<Sha256>(chain_key, b"mutesla-mac")
        .try_into()
        .expect("SHA-256 output is 32 bytes")
}

/// One application of the chain function `H`.
fn chain_step(key: &ChainKey) -> ChainKey {
    Sha256::digest(key)
        .try_into()
        .expect("SHA-256 output is 32 bytes")
}

/// The broadcaster (the querier in SIES).
pub struct Broadcaster {
    /// `chain[i]` is `K_i`; `chain[0]` is the public commitment `K_0`.
    chain: Vec<ChainKey>,
    /// Disclosure lag `d` in intervals.
    delay: u64,
    /// Precomputed `(interval, K'_i)` MAC keys, ascending by interval.
    /// Populated ahead of use by [`Broadcaster::prewarm_mac_window`]
    /// during idle gaps; [`Broadcaster::broadcast`] consults it before
    /// falling back to on-demand derivation. Purely a cache: the MAC key
    /// for an interval is the same bytes either way.
    prewarmed: Vec<(u64, [u8; 32])>,
}

impl Broadcaster {
    /// Generates a chain supporting intervals `1..=intervals`, with
    /// disclosure delay `d ≥ 1`.
    pub fn new(rng: &mut dyn RngCore, intervals: u64, delay: u64) -> Self {
        assert!(delay >= 1, "disclosure delay must be at least 1 interval");
        let n = intervals as usize + 1;
        let mut chain = vec![[0u8; 32]; n];
        rng.fill_bytes(&mut chain[n - 1]);
        for i in (0..n - 1).rev() {
            chain[i] = chain_step(&chain[i + 1]);
        }
        Broadcaster {
            chain,
            delay,
            prewarmed: Vec::new(),
        }
    }

    /// The public commitment `K_0`, distributed authentically at bootstrap.
    pub fn commitment(&self) -> ChainKey {
        self.chain[0]
    }

    /// The disclosure delay.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// Derives and caches the MAC keys `K'_i` for intervals
    /// `from..=to` (clamped to the chain, interval 0 excluded) in one
    /// pass through the multi-lane batched HMAC. Intended to run during
    /// the inter-interval idle gap so the per-packet HMAC in
    /// [`Broadcaster::broadcast`] becomes a table lookup. Returns how
    /// many keys were freshly derived; already-cached intervals are
    /// skipped, so calling with an overlapping window is cheap.
    pub fn prewarm_mac_window(&mut self, from: u64, to: u64) -> usize {
        let hi = to.min(self.chain.len() as u64 - 1);
        let fresh: Vec<u64> = (from.max(1)..=hi)
            .filter(|i| !self.prewarmed.iter().any(|(j, _)| j == i))
            .collect();
        if fresh.is_empty() {
            return 0;
        }
        let chain_keys: Vec<&[u8]> = fresh
            .iter()
            .map(|&i| self.chain[i as usize].as_slice())
            .collect();
        for (&i, mk) in fresh
            .iter()
            .zip(hmac_many::<Sha256>(&chain_keys, b"mutesla-mac"))
        {
            self.prewarmed
                .push((i, mk.try_into().expect("SHA-256 output is 32 bytes")));
        }
        self.prewarmed.sort_by_key(|(i, _)| *i);
        tel::count!("core.mutesla.prewarmed_keys", fresh.len() as u64);
        fresh.len()
    }

    /// Drops cached MAC keys for intervals at or below `interval`
    /// (their disclosure makes the cache entries dead weight).
    pub fn retire_prewarmed(&mut self, interval: u64) {
        self.prewarmed.retain(|(i, _)| *i > interval);
    }

    /// MACs a payload with interval `i`'s key. Panics when the chain is
    /// exhausted or `interval` is 0 (interval 0 is the commitment).
    ///
    /// Uses the prewarmed MAC key when
    /// [`Broadcaster::prewarm_mac_window`] covered this interval;
    /// otherwise derives it on the spot. The packet bytes are identical
    /// either way.
    pub fn broadcast(&self, interval: u64, payload: &[u8]) -> Packet {
        let mk = match self.prewarmed.binary_search_by_key(&interval, |(i, _)| *i) {
            Ok(idx) => {
                tel::count!("core.mutesla.prewarm_hits");
                self.prewarmed[idx].1
            }
            Err(_) => {
                tel::count!("core.mutesla.prewarm_misses");
                mac_key(&self.chain[interval as usize])
            }
        };
        let mac = hmac::<Sha256>(&mk, payload).try_into().expect("32 bytes");
        Packet {
            payload: payload.to_vec(),
            mac,
            interval,
        }
    }

    /// Discloses interval `i`'s key (sent during interval `i + d`).
    pub fn disclose(&self, interval: u64) -> Disclosure {
        tel::count!("core.mutesla.disclosures");
        tel::event(interval, tel::EventKind::KeyDisclosed, interval, 0);
        Disclosure {
            interval,
            key: self.chain[interval as usize],
        }
    }
}

/// Default size of the receiver's precomputed MAC-key window.
pub const DEFAULT_KEY_WINDOW: usize = 32;

/// A receiver (a source sensor in SIES).
pub struct Receiver {
    /// Last authenticated chain element and its interval.
    auth_key: ChainKey,
    auth_interval: u64,
    /// Disclosure delay `d` (known system parameter).
    delay: u64,
    /// Buffered, not-yet-verifiable packets.
    pending: Vec<Packet>,
    /// Precomputed `(interval, K'_i)` pairs for the most recently
    /// authenticated intervals, ascending by interval. Each entry costs
    /// one HMAC at disclosure time; afterwards any packet from a
    /// windowed interval verifies with a single MAC and zero chain
    /// hashing ([`Receiver::verify_archived`]).
    window: Vec<(u64, [u8; 32])>,
    window_cap: usize,
}

impl Receiver {
    /// Bootstraps from the authentic commitment `K_0`.
    pub fn new(commitment: ChainKey, delay: u64) -> Self {
        Receiver {
            auth_key: commitment,
            auth_interval: 0,
            delay,
            pending: Vec::new(),
            window: Vec::new(),
            window_cap: DEFAULT_KEY_WINDOW,
        }
    }

    /// Overrides how many authenticated intervals keep their MAC key
    /// precomputed (0 disables the window).
    pub fn with_key_window(mut self, cap: usize) -> Self {
        self.window_cap = cap;
        self.window.truncate(cap);
        self
    }

    /// Accepts a packet into the buffer if the security condition holds:
    /// at local time `now`, the key for `packet.interval` must not have
    /// been disclosed yet (`now < interval + d`). Late packets are
    /// rejected because a forger could already know the key.
    pub fn receive(&mut self, now: u64, packet: Packet) -> Result<(), SiesError> {
        if now >= packet.interval + self.delay {
            return Err(SiesError::BroadcastAuthFailure(format!(
                "security condition violated: packet for interval {} arrived at {now}",
                packet.interval
            )));
        }
        if packet.interval <= self.auth_interval {
            return Err(SiesError::BroadcastAuthFailure(
                "packet interval already disclosed".into(),
            ));
        }
        self.pending.push(packet);
        Ok(())
    }

    /// Processes a key disclosure: authenticates the key against the
    /// chain, then verifies and returns all buffered payloads it can now
    /// authenticate, in interval order.
    ///
    /// **Catch-up:** a receiver that missed `k` disclosures recovers from
    /// the next one it hears. While hashing `K_i` forward to the last
    /// authenticated element, the intermediate values *are* the keys of
    /// the skipped intervals (`K_j = H^(i-j)(K_i)`), so packets buffered
    /// for those intervals verify too instead of being dropped. This is
    /// safe because the security condition was already enforced when each
    /// packet was buffered — its key had not been disclosed at receive
    /// time.
    pub fn on_disclosure(&mut self, disclosure: Disclosure) -> Result<Vec<Vec<u8>>, SiesError> {
        if disclosure.interval <= self.auth_interval {
            return Err(SiesError::BroadcastAuthFailure(
                "stale key disclosure".into(),
            ));
        }
        // Authenticate: hashing forward (interval - auth_interval) times
        // must reach the last authenticated element. The intermediate
        // values are kept — `keys[d]` is the chain key for interval
        // `disclosure.interval - d`.
        let steps = disclosure.interval - self.auth_interval;
        let mut keys: Vec<ChainKey> = Vec::with_capacity(steps as usize);
        keys.push(disclosure.key);
        for _ in 1..steps {
            let next = chain_step(keys.last().expect("non-empty"));
            keys.push(next);
        }
        let anchor = chain_step(keys.last().expect("non-empty"));
        if !ct_eq(&anchor, &self.auth_key) {
            return Err(SiesError::BroadcastAuthFailure(
                "disclosed key does not extend the authenticated chain".into(),
            ));
        }
        let prev_auth = self.auth_interval;
        self.auth_key = disclosure.key;
        self.auth_interval = disclosure.interval;
        tel::count!("core.mutesla.disclosures_verified");
        // `steps > 1` means we recovered keys for skipped intervals.
        tel::count!("core.mutesla.catchup_steps", steps - 1);

        // Extend the precomputed MAC-key window with the newly
        // authenticated intervals (newest `window_cap` retained). One
        // HMAC per interval here replaces one per *packet* below and
        // keeps the key available for later archive re-verification.
        // The window keys share a fixed message and differ only in the
        // chain key, so the whole extension runs through the multi-lane
        // batched HMAC.
        let fresh = steps.min(self.window_cap as u64);
        let chain_keys: Vec<&[u8]> = (0..fresh)
            .rev()
            .map(|d| keys[d as usize].as_slice())
            .collect();
        for (d, mk) in (0..fresh)
            .rev()
            .zip(hmac_many::<Sha256>(&chain_keys, b"mutesla-mac"))
        {
            self.window.push((
                disclosure.interval - d,
                mk.try_into().expect("SHA-256 output is 32 bytes"),
            ));
        }
        if self.window.len() > self.window_cap {
            self.window.drain(..self.window.len() - self.window_cap);
        }

        // Verify everything now authenticable: packets for any interval
        // in (prev_auth, disclosure.interval].
        let mut verified: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut remaining = Vec::new();
        for packet in self.pending.drain(..) {
            if packet.interval > disclosure.interval {
                remaining.push(packet);
                continue;
            }
            if packet.interval <= prev_auth {
                // Cannot happen via `receive`, which rejects disclosed
                // intervals; drop defensively.
                continue;
            }
            // Windowed intervals reuse the precomputed K'_i; anything
            // older (a skip deeper than the window) derives it from the
            // chain walk directly.
            let mk = self
                .window
                .iter()
                .rev()
                .find(|(i, _)| *i == packet.interval)
                .map(|(_, mk)| *mk)
                .unwrap_or_else(|| {
                    mac_key(&keys[(disclosure.interval - packet.interval) as usize])
                });
            let expected = hmac::<Sha256>(&mk, &packet.payload);
            if ct_eq(&expected, &packet.mac) {
                verified.push((packet.interval, packet.payload));
            }
        }
        self.pending = remaining;
        verified.sort_by_key(|(interval, _)| *interval);
        Ok(verified.into_iter().map(|(_, payload)| payload).collect())
    }

    /// Re-verifies an already-delivered packet against the precomputed
    /// key window: a single MAC, no chain hashing. Returns `false` when
    /// the MAC is wrong *or* the packet's interval has aged out of the
    /// window (callers needing older intervals must retain payloads they
    /// verified at disclosure time).
    pub fn verify_archived(&self, packet: &Packet) -> bool {
        tel::count!("core.mutesla.archived_verifies");
        self.window
            .iter()
            .rev()
            .find(|(i, _)| *i == packet.interval)
            .is_some_and(|(_, mk)| ct_eq(&hmac::<Sha256>(mk, &packet.payload), &packet.mac))
    }

    /// Intervals currently covered by the precomputed key window, as an
    /// inclusive `(oldest, newest)` pair; `None` before any disclosure.
    pub fn window_span(&self) -> Option<(u64, u64)> {
        match (self.window.first(), self.window.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => Some((lo, hi)),
            _ => None,
        }
    }

    /// The last authenticated interval (0 before any disclosure).
    pub fn auth_interval(&self) -> u64 {
        self.auth_interval
    }

    /// The durable core of the receiver's state: the last authenticated
    /// chain element and its interval. Everything else (buffered
    /// packets, the precomputed key window) is a cache that a restarted
    /// receiver rebuilds as disclosures arrive.
    pub fn checkpoint(&self) -> (u64, ChainKey) {
        (self.auth_interval, self.auth_key)
    }

    /// Rebuilds a receiver from a journaled [`Self::checkpoint`],
    /// re-authenticating the checkpointed key against the original
    /// commitment: hashing `key` forward `interval` times must reproduce
    /// `K_0`. A checkpoint that does not chain back is rejected — a
    /// corrupted or forged journal cannot move the receiver onto a
    /// different chain.
    pub fn resume(
        commitment: ChainKey,
        delay: u64,
        interval: u64,
        key: ChainKey,
    ) -> Result<Self, SiesError> {
        let mut walked = key;
        for _ in 0..interval {
            walked = chain_step(&walked);
        }
        if !ct_eq(&walked, &commitment) {
            return Err(SiesError::BroadcastAuthFailure(format!(
                "checkpointed key for interval {interval} does not chain back to the commitment"
            )));
        }
        tel::count!("core.mutesla.resumes");
        Ok(Receiver {
            auth_key: key,
            auth_interval: interval,
            delay,
            pending: Vec::new(),
            window: Vec::new(),
            window_cap: DEFAULT_KEY_WINDOW,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(intervals: u64, delay: u64) -> (Broadcaster, Receiver) {
        let mut rng = StdRng::seed_from_u64(77);
        let b = Broadcaster::new(&mut rng, intervals, delay);
        let r = Receiver::new(b.commitment(), delay);
        (b, r)
    }

    #[test]
    fn broadcast_verifies_after_disclosure() {
        let (b, mut r) = setup(10, 2);
        let pkt = b.broadcast(1, b"SELECT SUM(temp)");
        r.receive(1, pkt).unwrap();
        let msgs = r.on_disclosure(b.disclose(1)).unwrap();
        assert_eq!(msgs, vec![b"SELECT SUM(temp)".to_vec()]);
    }

    #[test]
    fn forged_mac_rejected() {
        let (b, mut r) = setup(10, 2);
        let mut pkt = b.broadcast(1, b"legit query");
        pkt.payload = b"evil query".to_vec(); // adversary alters payload
        r.receive(1, pkt).unwrap();
        let msgs = r.on_disclosure(b.disclose(1)).unwrap();
        assert!(msgs.is_empty(), "forged packet must not verify");
    }

    #[test]
    fn forged_key_rejected() {
        let (b, mut r) = setup(10, 2);
        let pkt = b.broadcast(1, b"q");
        r.receive(1, pkt).unwrap();
        let bogus = Disclosure {
            interval: 1,
            key: [0xEE; 32],
        };
        assert!(r.on_disclosure(bogus).is_err());
        // The real key still works afterwards.
        assert_eq!(r.on_disclosure(b.disclose(1)).unwrap().len(), 1);
    }

    #[test]
    fn security_condition_rejects_late_packets() {
        let (b, mut r) = setup(10, 2);
        let pkt = b.broadcast(1, b"q");
        // Arrives at time 3 = 1 + delay: key may already be public.
        assert!(r.receive(3, pkt).is_err());
    }

    #[test]
    fn stale_disclosure_rejected() {
        let (b, mut r) = setup(10, 1);
        r.receive(1, b.broadcast(1, b"a")).unwrap();
        r.on_disclosure(b.disclose(1)).unwrap();
        assert!(r.on_disclosure(b.disclose(1)).is_err());
    }

    #[test]
    fn skipped_intervals_still_authenticate() {
        // Receiver misses disclosures 1..4; key 5 must still chain back to
        // the commitment.
        let (b, mut r) = setup(10, 2);
        r.receive(5, b.broadcast(5, b"late query")).unwrap();
        let msgs = r.on_disclosure(b.disclose(5)).unwrap();
        assert_eq!(msgs.len(), 1);
    }

    #[test]
    fn packets_for_future_intervals_stay_buffered() {
        let (b, mut r) = setup(10, 3);
        r.receive(1, b.broadcast(1, b"one")).unwrap();
        r.receive(2, b.broadcast(2, b"two")).unwrap();
        let first = r.on_disclosure(b.disclose(1)).unwrap();
        assert_eq!(first, vec![b"one".to_vec()]);
        let second = r.on_disclosure(b.disclose(2)).unwrap();
        assert_eq!(second, vec![b"two".to_vec()]);
    }

    #[test]
    fn catch_up_verifies_packets_from_skipped_intervals() {
        // The receiver buffers packets for intervals 1, 2 and 3 but only
        // ever hears the disclosure for 3 (1 and 2 were lost). Hashing
        // K_3 forward recovers K_2 and K_1, so all three packets verify,
        // in interval order.
        let (b, mut r) = setup(10, 4);
        r.receive(1, b.broadcast(1, b"one")).unwrap();
        r.receive(2, b.broadcast(2, b"two")).unwrap();
        r.receive(3, b.broadcast(3, b"three")).unwrap();
        let msgs = r.on_disclosure(b.disclose(3)).unwrap();
        assert_eq!(
            msgs,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
        // The chain state advanced to interval 3.
        assert!(r.on_disclosure(b.disclose(3)).is_err());
        r.receive(4, b.broadcast(4, b"four")).unwrap();
        assert_eq!(r.on_disclosure(b.disclose(4)).unwrap().len(), 1);
    }

    #[test]
    fn catch_up_still_rejects_forgeries_in_skipped_intervals() {
        let (b, mut r) = setup(10, 4);
        let mut forged = b.broadcast(2, b"real");
        forged.payload = b"fake".to_vec();
        r.receive(1, b.broadcast(1, b"one")).unwrap();
        r.receive(2, forged).unwrap();
        let msgs = r.on_disclosure(b.disclose(3)).unwrap();
        assert_eq!(msgs, vec![b"one".to_vec()], "forged packet must not verify");
    }

    #[test]
    fn archived_packets_verify_from_window() {
        let (b, mut r) = setup(10, 4);
        let real = b.broadcast(2, b"two");
        r.receive(1, b.broadcast(1, b"one")).unwrap();
        r.receive(2, real.clone()).unwrap();
        assert!(!r.verify_archived(&real), "window empty before disclosure");
        r.on_disclosure(b.disclose(3)).unwrap();
        // Catch-up authenticated intervals 1..=3; all are windowed.
        assert_eq!(r.window_span(), Some((1, 3)));
        assert!(r.verify_archived(&real));
        assert!(r.verify_archived(&b.broadcast(1, b"one")));
        let mut forged = real.clone();
        forged.payload = b"evil".to_vec();
        assert!(!r.verify_archived(&forged));
        // An interval never authenticated is not in the window.
        assert!(!r.verify_archived(&b.broadcast(5, b"future")));
    }

    #[test]
    fn key_window_is_bounded() {
        let (b, r) = setup(10, 2);
        let mut r = r.with_key_window(2);
        for i in 1..=5 {
            r.receive(i, b.broadcast(i, b"q")).unwrap();
            r.on_disclosure(b.disclose(i)).unwrap();
        }
        assert_eq!(r.window_span(), Some((4, 5)));
        assert!(r.verify_archived(&b.broadcast(5, b"q")));
        assert!(r.verify_archived(&b.broadcast(4, b"q")));
        // Interval 3 aged out: re-verification is refused, not wrong.
        assert!(!r.verify_archived(&b.broadcast(3, b"q")));
    }

    #[test]
    fn deep_catch_up_beyond_window_still_verifies_pending() {
        // Skip 6 intervals with a window of 2: the packets for the old
        // intervals must still verify at disclosure time (from the chain
        // walk), even though only the newest 2 keys are retained.
        let (b, r) = setup(10, 8);
        let mut r = r.with_key_window(2);
        for i in 1..=6 {
            r.receive(i, b.broadcast(i, format!("q{i}").as_bytes()))
                .unwrap();
        }
        let msgs = r.on_disclosure(b.disclose(6)).unwrap();
        assert_eq!(msgs.len(), 6);
        assert_eq!(r.window_span(), Some((5, 6)));
    }

    #[test]
    fn checkpoint_resume_round_trips_mid_chain() {
        let (b, mut r) = setup(10, 2);
        for i in 1..=4 {
            r.receive(i, b.broadcast(i, b"q")).unwrap();
            r.on_disclosure(b.disclose(i)).unwrap();
        }
        let (interval, key) = r.checkpoint();
        assert_eq!(interval, 4);
        assert_eq!(r.auth_interval(), 4);

        // A restarted receiver resumes at the checkpoint and keeps
        // authenticating from there.
        let mut r2 = Receiver::resume(b.commitment(), 2, interval, key).unwrap();
        assert_eq!(r2.auth_interval(), 4);
        assert!(
            r2.on_disclosure(b.disclose(4)).is_err(),
            "resumed receiver must reject already-disclosed intervals"
        );
        r2.receive(5, b.broadcast(5, b"after restart")).unwrap();
        let msgs = r2.on_disclosure(b.disclose(5)).unwrap();
        assert_eq!(msgs, vec![b"after restart".to_vec()]);
    }

    #[test]
    fn resume_rejects_forged_checkpoints() {
        let (b, _r) = setup(10, 2);
        assert!(Receiver::resume(b.commitment(), 2, 3, [0xAB; 32]).is_err());
        // Right key, wrong interval: the walk lands elsewhere.
        let key = b.disclose(3).key;
        assert!(Receiver::resume(b.commitment(), 2, 4, key).is_err());
        assert!(Receiver::resume(b.commitment(), 2, 3, key).is_ok());
    }

    #[test]
    fn resume_at_interval_zero_is_a_fresh_receiver() {
        let (b, _r) = setup(5, 1);
        let r = Receiver::resume(b.commitment(), 1, 0, b.commitment()).unwrap();
        assert_eq!(r.auth_interval(), 0);
    }

    #[test]
    fn prewarmed_broadcast_is_bit_identical_to_cold() {
        let mut rng = StdRng::seed_from_u64(77);
        let cold = Broadcaster::new(&mut rng, 10, 2);
        let mut rng = StdRng::seed_from_u64(77);
        let mut warm = Broadcaster::new(&mut rng, 10, 2);
        assert_eq!(warm.prewarm_mac_window(1, 6), 6);
        // Overlapping re-warm derives nothing new.
        assert_eq!(warm.prewarm_mac_window(3, 8), 2);
        for i in 1..=10 {
            let payload = format!("query {i}");
            assert_eq!(
                warm.broadcast(i, payload.as_bytes()),
                cold.broadcast(i, payload.as_bytes()),
                "prewarmed packet differs at interval {i}"
            );
        }
        // Retiring the cache changes nothing observable.
        warm.retire_prewarmed(8);
        assert_eq!(warm.broadcast(5, b"x"), cold.broadcast(5, b"x"));
        // Clamped past the chain end: nothing to derive.
        assert_eq!(warm.prewarm_mac_window(11, 20), 0);
    }

    #[test]
    fn prewarmed_packets_verify_end_to_end() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = Broadcaster::new(&mut rng, 10, 2);
        let mut r = Receiver::new(b.commitment(), 2);
        b.prewarm_mac_window(1, 10);
        r.receive(1, b.broadcast(1, b"warm query")).unwrap();
        let msgs = r.on_disclosure(b.disclose(1)).unwrap();
        assert_eq!(msgs, vec![b"warm query".to_vec()]);
    }

    #[test]
    fn chain_commitment_is_deterministic_chain_head() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = Broadcaster::new(&mut rng, 5, 1);
        // Hashing K_5 five times yields K_0.
        let mut k = b.disclose(5).key;
        for _ in 0..5 {
            k = chain_step(&k);
        }
        assert_eq!(k, b.commitment());
    }
}
