//! Order-preserving scoped-thread sharding for epoch pipelines.
//!
//! The engine shards the per-sensor work of one epoch (PRF derivation,
//! encryption, share generation) across a pool of `std::thread::scope`
//! workers. Determinism is preserved *by construction*: every helper here
//! assigns each worker a contiguous, disjoint slice of the input and
//! writes results into the matching slice of the output, so the caller
//! observes exactly the sequence a serial loop would have produced —
//! regardless of thread count or scheduling. No runtime dependency is
//! involved; workers live only for the duration of the call.

use sies_telemetry as tel;
use std::num::NonZeroUsize;

/// Worker-pool sizing for the parallel epoch pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threads {
    /// Use [`std::thread::available_parallelism`] (falls back to 1 when
    /// the host does not report it).
    Auto,
    /// Exactly this many workers; `Fixed(1)` runs inline with no spawns.
    Fixed(NonZeroUsize),
}

impl Threads {
    /// Builds a fixed thread count, mapping `0` to `Auto`.
    pub fn fixed(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) => Threads::Fixed(n),
            None => Threads::Auto,
        }
    }

    /// A single-worker (serial) configuration.
    pub const fn serial() -> Self {
        // SAFETY-free const construction: 1 is non-zero.
        match NonZeroUsize::new(1) {
            Some(n) => Threads::Fixed(n),
            None => unreachable!(),
        }
    }

    /// Resolves to a concrete worker count (≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Threads::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Threads::Fixed(n) => n.get(),
        }
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::serial()
    }
}

/// Splits `items` into at most `threads` contiguous chunks, applies `f`
/// to each chunk on its own scoped worker, and returns the per-chunk
/// results **in input order**.
///
/// With `threads <= 1` (or a single chunk) `f` runs inline on the calling
/// thread — the serial and parallel paths execute the same closure over
/// the same chunk boundaries only when `threads` matches, so callers that
/// need byte-identical output across thread counts must combine chunk
/// results with an exactly associative operation (modular addition,
/// integer sums, ordered concatenation — not floating-point folds).
pub fn map_chunks<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.max(1).min(items.len());
    let chunk_len = items.len().div_ceil(workers);
    if workers == 1 {
        let _shard = tel::span!("parallel.shard");
        return vec![f(items)];
    }
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let mut out: Vec<Option<U>> = Vec::with_capacity(chunks.len());
    out.resize_with(chunks.len(), || None);
    std::thread::scope(|scope| {
        for (chunk, slot) in chunks.iter().zip(out.iter_mut()) {
            let f = &f;
            scope.spawn(move || {
                // Each worker's whole shard is one span: the histogram's
                // spread across samples is the shard imbalance.
                let _shard = tel::span!("parallel.shard");
                *slot = Some(f(chunk));
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every worker fills its slot"))
        .collect()
}

/// Applies `f(index, item)` to every item across `threads` scoped
/// workers and returns the results **in input order**, exactly as the
/// serial loop `items.iter().enumerate().map(...)` would.
///
/// Unlike [`map_chunks`] the per-item closure sees the item's global
/// index, so output is independent of the chunking: any thread count
/// yields the identical `Vec`.
pub fn map_ordered<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = threads.max(1).min(items.len().max(1));
    if workers == 1 {
        let _shard = tel::span!("parallel.shard");
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (w, (in_chunk, out_chunk)) in items
            .chunks(chunk_len)
            .zip(out.chunks_mut(chunk_len))
            .enumerate()
        {
            let base = w * chunk_len;
            let f = &f;
            scope.spawn(move || {
                let _shard = tel::span!("parallel.shard");
                for (j, (item, slot)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every worker fills its slots"))
        .collect()
}

/// Runs `f(index, &items[i], &mut outs[i])` for every pair, sharding
/// contiguous pair ranges across at most `threads` scoped workers. Each
/// worker owns a disjoint `&mut` slice of `outs`, so no synchronization
/// is needed and — unlike [`map_ordered`] — **nothing is allocated**:
/// results land in caller-owned slots. This is the hand-off the streamed
/// epoch pipeline relies on for its zero-allocation steady state
/// (`threads <= 1` runs fully inline).
///
/// `f` sees the pair's global index, so output is independent of the
/// chunking exactly as in [`map_ordered`].
///
/// # Panics
/// When `items` and `outs` differ in length.
pub fn for_each_pair_mut<T, U, F>(threads: usize, items: &[T], outs: &mut [U], f: F)
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T, &mut U) + Sync,
{
    assert_eq!(
        items.len(),
        outs.len(),
        "for_each_pair_mut needs one output slot per item"
    );
    if items.is_empty() {
        return;
    }
    let workers = threads.max(1).min(items.len());
    if workers == 1 {
        let _shard = tel::span!("parallel.shard");
        for (i, (item, out)) in items.iter().zip(outs.iter_mut()).enumerate() {
            f(i, item, out);
        }
        return;
    }
    let chunk_len = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, (in_chunk, out_chunk)) in items
            .chunks(chunk_len)
            .zip(outs.chunks_mut(chunk_len))
            .enumerate()
        {
            let base = w * chunk_len;
            let f = &f;
            scope.spawn(move || {
                let _shard = tel::span!("parallel.shard");
                for (j, (item, out)) in in_chunk.iter().zip(out_chunk.iter_mut()).enumerate() {
                    f(base + j, item, out);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_resolve() {
        assert_eq!(Threads::serial().resolve(), 1);
        assert_eq!(Threads::fixed(4).resolve(), 4);
        assert!(Threads::fixed(0).resolve() >= 1); // 0 → Auto
        assert!(Threads::Auto.resolve() >= 1);
        assert_eq!(Threads::default(), Threads::serial());
    }

    #[test]
    fn map_ordered_matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, v)| v * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 4, 7, 8, 64, 2000] {
            let par = map_ordered(threads, &items, |i, v| v * 3 + i as u64);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_ordered_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_ordered(8, &empty, |_, v| *v).is_empty());
        assert_eq!(map_ordered(8, &[9u32], |i, v| (i, *v)), vec![(0, 9)]);
    }

    #[test]
    fn map_chunks_concatenation_is_order_preserving() {
        let items: Vec<u32> = (0..257).collect();
        for threads in [1, 2, 5, 16] {
            let flat: Vec<u32> = map_chunks(threads, &items, |c| c.to_vec())
                .into_iter()
                .flatten()
                .collect();
            assert_eq!(flat, items, "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_exact_sums_are_thread_count_invariant() {
        // Integer sums combine associatively, so any chunking agrees.
        let items: Vec<u64> = (1..=10_000).collect();
        let expected: u64 = items.iter().sum();
        for threads in [1, 2, 3, 8, 33] {
            let total: u64 = map_chunks(threads, &items, |c| c.iter().sum::<u64>())
                .into_iter()
                .sum();
            assert_eq!(total, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_chunks_empty_input() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunks(4, &empty, |c| c.len()).is_empty());
    }

    #[test]
    fn for_each_pair_mut_matches_serial_for_every_thread_count() {
        let items: Vec<u64> = (0..513).collect();
        let mut expected = vec![0u64; items.len()];
        for (i, (v, o)) in items.iter().zip(expected.iter_mut()).enumerate() {
            *o = v * 7 + i as u64;
        }
        for threads in [1, 2, 3, 8, 64, 1000] {
            let mut outs = vec![0u64; items.len()];
            for_each_pair_mut(threads, &items, &mut outs, |i, v, o| *o = v * 7 + i as u64);
            assert_eq!(outs, expected, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_pair_mut_empty_input() {
        let empty: Vec<u8> = Vec::new();
        let mut outs: Vec<u8> = Vec::new();
        for_each_pair_mut(4, &empty, &mut outs, |_, _, _| unreachable!());
    }

    #[test]
    #[should_panic(expected = "one output slot per item")]
    fn for_each_pair_mut_rejects_length_mismatch() {
        let mut outs = vec![0u8; 2];
        for_each_pair_mut(1, &[1u8, 2, 3], &mut outs, |_, _, _| {});
    }
}
