//! Property-based tests for the SIES core: codec field separation, the
//! scheme's end-to-end exactness/rejection behaviour, and μTesla chain
//! authentication under random schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::codec::{decode_final, encode_message, share_to_u256, sum_shares, SecretShare};
use sies_core::mutesla::{Broadcaster, Receiver};
use sies_core::params::{ResultWidth, SystemParams};
use sies_core::scheme::{setup, Psr, Source};
use sies_crypto::u256::U256;
use sies_crypto::DEFAULT_PRIME_256;

proptest! {
    // ---- Codec ----------------------------------------------------------

    #[test]
    fn codec_round_trips(n in 1u64..1_000_000, value in 0u64..=u32::MAX as u64, share in any::<[u8; 20]>()) {
        let params = SystemParams::new(n).unwrap();
        let m = encode_message(&params, value, &share).unwrap();
        let dec = decode_final(&params, &m);
        prop_assert_eq!(dec.result, value);
        prop_assert_eq!(dec.secret, share_to_u256(&share));
    }

    /// The Figure-2 claim: summing up to N messages never lets share
    /// carries cross into the result field.
    #[test]
    fn field_separation_under_maximal_shares(
        k in 1usize..64,
        values in proptest::collection::vec(0u64..=1000, 64),
    ) {
        let params = SystemParams::new(64).unwrap();
        let share: SecretShare = [0xFF; 20]; // worst-case carries
        let mut acc = U256::ZERO;
        let mut expected_sum = 0u64;
        for &v in values.iter().take(k) {
            acc = acc.checked_add(&encode_message(&params, v, &share).unwrap()).unwrap();
            expected_sum += v;
        }
        let dec = decode_final(&params, &acc);
        prop_assert_eq!(dec.result, expected_sum);
        prop_assert_eq!(dec.secret, sum_shares(std::iter::repeat_n(&share, k)));
    }

    #[test]
    fn codec_rejects_out_of_range_under_u32(value in (u32::MAX as u64 + 1)..u64::MAX) {
        let params =
            SystemParams::with_prime(1024, DEFAULT_PRIME_256, ResultWidth::U32).unwrap();
        prop_assert!(encode_message(&params, value, &[0; 20]).is_err());
    }

    // ---- Scheme ----------------------------------------------------------

    #[test]
    fn scheme_exactness(
        seed in any::<u64>(),
        epoch in any::<u64>(),
        values in proptest::collection::vec(0u64..1_000_000, 1..24),
    ) {
        let n = values.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let (querier, creds, aggregator) = setup(&mut rng, SystemParams::new(n).unwrap());
        let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
        let psrs: Vec<Psr> = sources
            .iter()
            .zip(&values)
            .map(|(s, &v)| s.initialize(epoch, v).unwrap())
            .collect();
        let merged = aggregator.merge(&psrs).unwrap();
        let res = querier.evaluate(&merged, epoch).unwrap();
        prop_assert_eq!(res.sum, values.iter().sum::<u64>());
    }

    /// Random single-bit ciphertext corruption is always rejected.
    #[test]
    fn bitflips_always_detected(
        seed in any::<u64>(),
        values in proptest::collection::vec(0u64..10_000, 2..10),
        flip_bit in 0usize..256,
    ) {
        let n = values.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let (querier, creds, aggregator) = setup(&mut rng, SystemParams::new(n).unwrap());
        let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
        let psrs: Vec<Psr> = sources
            .iter()
            .zip(&values)
            .map(|(s, &v)| s.initialize(0, v).unwrap())
            .collect();
        let merged = aggregator.merge(&psrs).unwrap();
        let mut bytes = merged.to_bytes();
        bytes[flip_bit / 8] ^= 1 << (flip_bit % 8);
        let corrupted = Psr::from_bytes(&bytes);
        prop_assume!(corrupted != merged); // (always true, defensive)
        prop_assert!(querier.evaluate(&corrupted, 0).is_err());
    }

    /// Evaluating with a wrong contributor subset never silently passes:
    /// either it is the right subset, or verification fails.
    #[test]
    fn wrong_contributor_sets_rejected(
        seed in any::<u64>(),
        n in 3u64..12,
        missing in 0u32..12,
    ) {
        let missing = missing % n as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let (querier, creds, aggregator) = setup(&mut rng, SystemParams::new(n).unwrap());
        let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();
        // All sources contribute…
        let psrs: Vec<Psr> =
            sources.iter().map(|s| s.initialize(1, 5).unwrap()).collect();
        let merged = aggregator.merge(&psrs).unwrap();
        // …but the querier is told one of them failed.
        let claimed: Vec<u32> = (0..n as u32).filter(|&i| i != missing).collect();
        prop_assert!(querier
            .evaluate_with_contributors(&merged, 1, &claimed)
            .is_err());
    }

    // ---- muTesla ---------------------------------------------------------

    /// Any subset of broadcast intervals, disclosed in order, verifies
    /// all and only the packets MACed under the authentic chain.
    #[test]
    fn mutesla_random_schedules(
        seed in any::<u64>(),
        sent_mask in 1u16..0x3FF, // which of intervals 1..=10 carry a packet
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let broadcaster = Broadcaster::new(&mut rng, 12, 2);
        let mut receiver = Receiver::new(broadcaster.commitment(), 2);
        let mut expected = 0usize;
        for interval in 1..=10u64 {
            if sent_mask >> (interval - 1) & 1 == 1 {
                let payload = format!("query-{interval}");
                receiver
                    .receive(interval, broadcaster.broadcast(interval, payload.as_bytes()))
                    .unwrap();
                expected += 1;
            }
        }
        let mut verified = 0usize;
        for interval in 1..=10u64 {
            if sent_mask >> (interval - 1) & 1 == 1 {
                verified += receiver.on_disclosure(broadcaster.disclose(interval)).unwrap().len();
            }
        }
        prop_assert_eq!(verified, expected);
    }
}
