//! Parameter sweeps of the paper's Table IV.
//!
//! | Parameter | Default | Range |
//! |---|---|---|
//! | Number of sources `N` | 1024 | 64, 256, 1024, 4096, 16384 |
//! | Fanout `F` | 4 | 2, 3, 4, 5, 6 |
//! | Domain `D = [18,50]×10^k` | ×10² | ×1, ×10, ×10², ×10³, ×10⁴ |

use crate::intel_lab::DomainScale;

/// Default number of sources.
pub const DEFAULT_N: u64 = 1024;
/// Default aggregator fanout.
pub const DEFAULT_F: usize = 4;
/// Default domain scale (×10² → `[1800, 5000]`).
pub const DEFAULT_SCALE: DomainScale = DomainScale::DEFAULT;
/// Default number of sketches `J` for SECOA (bounds the relative error
/// within 10% with probability 90%, following the paper's choice).
pub const DEFAULT_J: usize = 300;
/// Number of epochs each experiment averages over.
pub const DEFAULT_EPOCHS: u64 = 20;

/// The `N` sweep of Figure 6(a).
pub const N_RANGE: [u64; 5] = [64, 256, 1024, 4096, 16384];

/// The fanout sweep of Figure 5.
pub const F_RANGE: [usize; 5] = [2, 3, 4, 5, 6];

/// One experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of sources `N`.
    pub n: u64,
    /// Aggregator fanout `F`.
    pub f: usize,
    /// Domain scale.
    pub scale: DomainScale,
    /// SECOA sketch count `J`.
    pub j: usize,
    /// Epochs to average over.
    pub epochs: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            n: DEFAULT_N,
            f: DEFAULT_F,
            scale: DEFAULT_SCALE,
            j: DEFAULT_J,
            epochs: DEFAULT_EPOCHS,
        }
    }
}

impl Config {
    /// Configurations for the Figure 4 / 6(b) domain sweep: vary `D`, fix
    /// `N` and `F` at defaults.
    pub fn domain_sweep() -> Vec<Config> {
        DomainScale::paper_range()
            .into_iter()
            .map(|scale| Config {
                scale,
                ..Default::default()
            })
            .collect()
    }

    /// Configurations for the Figure 5 fanout sweep.
    pub fn fanout_sweep() -> Vec<Config> {
        F_RANGE
            .into_iter()
            .map(|f| Config {
                f,
                ..Default::default()
            })
            .collect()
    }

    /// Configurations for the Figure 6(a) source-count sweep.
    pub fn n_sweep() -> Vec<Config> {
        N_RANGE
            .into_iter()
            .map(|n| Config {
                n,
                ..Default::default()
            })
            .collect()
    }

    /// The integer value domain `[D_L, D_U]` of this configuration.
    pub fn domain(&self) -> (u64, u64) {
        self.scale.domain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = Config::default();
        assert_eq!(c.n, 1024);
        assert_eq!(c.f, 4);
        assert_eq!(c.domain(), (1800, 5000));
        assert_eq!(c.j, 300);
        assert_eq!(c.epochs, 20);
    }

    #[test]
    fn sweeps_have_paper_cardinality() {
        assert_eq!(Config::domain_sweep().len(), 5);
        assert_eq!(Config::fanout_sweep().len(), 5);
        assert_eq!(Config::n_sweep().len(), 5);
    }

    #[test]
    fn sweeps_vary_only_their_parameter() {
        for c in Config::fanout_sweep() {
            assert_eq!(c.n, DEFAULT_N);
            assert_eq!(c.scale, DEFAULT_SCALE);
        }
        for c in Config::n_sweep() {
            assert_eq!(c.f, DEFAULT_F);
        }
    }
}
