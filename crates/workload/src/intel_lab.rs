//! Intel-Lab-like synthetic sensor stream.
//!
//! The paper experiments on the Intel Lab dataset: sensor temperatures "in
//! degrees Celsius represented as float numbers with precision of four
//! decimal digits", with drawn values falling in `[18, 50]`. We reproduce
//! the *distributional* properties the experiments depend on — bounded
//! range, 4-decimal quantization, smooth temporal evolution — with a
//! seeded process: a diurnal sinusoid, a per-sensor bias, and AR(1) noise.
//! DESIGN.md §4 records this substitution; the schemes' costs depend only
//! on the value range (SECOA) or not on the data at all (SIES, CMT).

use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;

/// Temperature bounds of the drawn values (°C), matching the paper.
pub const TEMP_MIN: f64 = 18.0;
/// Upper temperature bound.
pub const TEMP_MAX: f64 = 50.0;

/// Number of epochs in a simulated "day" for the diurnal cycle.
const EPOCHS_PER_DAY: f64 = 288.0; // 5-minute epochs

/// Domain scaling `×10^power` (paper §VI: "each source multiplies its
/// drawn value with powers of 10, and then truncates it"), which sweeps
/// the integer domain `D` from `[18, 50]` up to `[180000, 500000]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainScale {
    /// The exponent `k` in `×10^k`.
    pub power: u32,
}

impl DomainScale {
    /// The paper's default domain: `×10²`, i.e. `D = [1800, 5000]`.
    pub const DEFAULT: DomainScale = DomainScale { power: 2 };

    /// All scales used in Figure 4 / Figure 6(b): `×1 .. ×10⁴`.
    pub fn paper_range() -> [DomainScale; 5] {
        [0, 1, 2, 3, 4].map(|power| DomainScale { power })
    }

    /// Scales and truncates a float reading to its integer encoding.
    pub fn scale(&self, value: f64) -> u64 {
        (value * 10f64.powi(self.power as i32)).trunc() as u64
    }

    /// Converts an integer SUM result back to the float domain (the
    /// querier divides by the same power of 10).
    pub fn unscale(&self, value: u64) -> f64 {
        value as f64 / 10f64.powi(self.power as i32)
    }

    /// The integer domain bounds `[D_L, D_U]` this scale induces.
    pub fn domain(&self) -> (u64, u64) {
        (self.scale(TEMP_MIN), self.scale(TEMP_MAX))
    }
}

/// Quantizes to four decimal digits, like the Intel Lab readings.
fn quantize4(v: f64) -> f64 {
    (v * 10_000.0).round() / 10_000.0
}

/// Seeded synthetic temperature stream for `N` sensors.
pub struct IntelLabGenerator {
    /// Per-sensor static bias (placement effect), °C.
    bias: Vec<f64>,
    /// Per-sensor AR(1) noise state.
    ar_state: Vec<f64>,
    rng: rand::rngs::StdRng,
}

impl IntelLabGenerator {
    /// Creates a generator for `num_sensors` sensors.
    pub fn new(seed: u64, num_sensors: usize) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bias = (0..num_sensors)
            .map(|_| rng.random_range(-4.0..4.0))
            .collect();
        let ar_state = vec![0.0; num_sensors];
        IntelLabGenerator {
            bias,
            ar_state,
            rng,
        }
    }

    /// Number of sensors.
    pub fn num_sensors(&self) -> usize {
        self.bias.len()
    }

    /// Float temperatures (°C, 4-decimal, in `[18, 50]`) for one epoch.
    pub fn epoch_temperatures(&mut self, epoch: u64) -> Vec<f64> {
        let phase = 2.0 * std::f64::consts::PI * (epoch as f64) / EPOCHS_PER_DAY;
        // Mid-range diurnal baseline that keeps headroom for bias + noise.
        let base = 30.0 + 8.0 * phase.sin();
        let n = self.bias.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            // AR(1): x' = 0.9x + ε, ε ~ U(-0.5, 0.5).
            let eps: f64 = self.rng.random_range(-0.5..0.5);
            self.ar_state[i] = 0.9 * self.ar_state[i] + eps;
            let v = (base + self.bias[i] + self.ar_state[i]).clamp(TEMP_MIN, TEMP_MAX);
            out.push(quantize4(v));
        }
        out
    }

    /// Integer-encoded readings for one epoch under a domain scale.
    pub fn epoch_values(&mut self, epoch: u64, scale: DomainScale) -> Vec<u64> {
        self.epoch_temperatures(epoch)
            .into_iter()
            .map(|t| scale.scale(t))
            .collect()
    }
}

/// A plain uniform value generator over an integer domain `[lo, hi]` —
/// handy for worst-case experiments and property tests.
pub struct UniformGenerator {
    lo: u64,
    hi: u64,
    rng: rand::rngs::StdRng,
}

impl UniformGenerator {
    /// Uniform over `[lo, hi]` (inclusive).
    pub fn new(seed: u64, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi);
        UniformGenerator {
            lo,
            hi,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// One epoch of values for `n` sources.
    pub fn epoch_values(&mut self, n: usize) -> Vec<u64> {
        (0..n)
            .map(|_| self.rng.random_range(self.lo..=self.hi))
            .collect()
    }

    /// A single draw.
    pub fn draw(&mut self) -> u64 {
        self.rng.random_range(self.lo..=self.hi)
    }
}

/// Deterministically fills a byte seed from a `u64` (helper for tests that
/// need an `RngCore`).
pub fn seeded_rng(seed: u64) -> impl RngCore {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperatures_stay_in_paper_range() {
        let mut generator = IntelLabGenerator::new(42, 100);
        for epoch in 0..500 {
            for t in generator.epoch_temperatures(epoch) {
                assert!((TEMP_MIN..=TEMP_MAX).contains(&t), "t = {t} out of range");
            }
        }
    }

    #[test]
    fn temperatures_are_4_decimal_quantized() {
        let mut generator = IntelLabGenerator::new(1, 10);
        for t in generator.epoch_temperatures(3) {
            let scaled = t * 10_000.0;
            assert!(
                (scaled - scaled.round()).abs() < 1e-6,
                "t = {t} not quantized"
            );
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = IntelLabGenerator::new(7, 20);
        let mut b = IntelLabGenerator::new(7, 20);
        assert_eq!(a.epoch_temperatures(0), b.epoch_temperatures(0));
        assert_eq!(a.epoch_temperatures(1), b.epoch_temperatures(1));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = IntelLabGenerator::new(7, 20);
        let mut b = IntelLabGenerator::new(8, 20);
        assert_ne!(a.epoch_temperatures(0), b.epoch_temperatures(0));
    }

    #[test]
    fn default_scale_yields_paper_domain() {
        let (lo, hi) = DomainScale::DEFAULT.domain();
        assert_eq!((lo, hi), (1800, 5000));
        let (lo, hi) = DomainScale { power: 0 }.domain();
        assert_eq!((lo, hi), (18, 50));
        let (lo, hi) = DomainScale { power: 4 }.domain();
        assert_eq!((lo, hi), (180_000, 500_000));
    }

    #[test]
    fn scale_truncates_like_the_paper() {
        let s = DomainScale { power: 2 };
        assert_eq!(s.scale(23.4567), 2345);
        assert_eq!(s.scale(23.999), 2399);
        assert!((s.unscale(2345) - 23.45).abs() < 1e-9);
    }

    #[test]
    fn scaled_values_respect_domain() {
        let mut generator = IntelLabGenerator::new(3, 50);
        for scale in DomainScale::paper_range() {
            let (lo, hi) = scale.domain();
            for v in generator.epoch_values(9, scale) {
                assert!(v >= lo && v <= hi, "v = {v} outside [{lo}, {hi}]");
            }
        }
    }

    #[test]
    fn uniform_generator_bounds() {
        let mut u = UniformGenerator::new(5, 1800, 5000);
        for v in u.epoch_values(1000) {
            assert!((1800..=5000).contains(&v));
        }
    }

    #[test]
    fn temporal_smoothness() {
        // Consecutive epochs should not jump wildly (AR(1) + sinusoid).
        let mut generator = IntelLabGenerator::new(11, 5);
        let a = generator.epoch_temperatures(100);
        let b = generator.epoch_temperatures(101);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 2.0, "jump from {x} to {y}");
        }
    }
}
