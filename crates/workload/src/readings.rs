//! Multi-attribute readings for the query model: temperature plus
//! humidity, light and voltage channels, mirroring the Intel Lab dataset's
//! schema so WHERE-predicate queries have something to filter on.

use crate::intel_lab::{DomainScale, IntelLabGenerator};
use rand::Rng;
use rand::SeedableRng;
use sies_core::query::SensorReading;

/// Generates full [`SensorReading`]s per epoch. Humidity anti-correlates
/// with temperature, light follows the same diurnal phase, and voltage
/// declines slowly as batteries drain.
pub struct ReadingGenerator {
    temps: IntelLabGenerator,
    scale: DomainScale,
    rng: rand::rngs::StdRng,
}

impl ReadingGenerator {
    /// Creates a generator for `num_sensors` sensors at a domain scale.
    pub fn new(seed: u64, num_sensors: usize, scale: DomainScale) -> Self {
        ReadingGenerator {
            temps: IntelLabGenerator::new(seed, num_sensors),
            scale,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// One epoch of readings, one per sensor.
    pub fn epoch_readings(&mut self, epoch: u64) -> Vec<SensorReading> {
        let temps = self.temps.epoch_temperatures(epoch);
        temps
            .into_iter()
            .map(|t| {
                // Humidity (%, scaled ×10): anti-correlated with temp.
                let humidity =
                    (90.0 - 1.5 * (t - 18.0) + self.rng.random_range(-3.0..3.0)).clamp(15.0, 95.0);
                // Light (lux): brighter when hotter, noisy.
                let light = (40.0 * (t - 15.0) + self.rng.random_range(0.0..200.0)).max(0.0);
                // Voltage (mV): 2.2–2.9 V band.
                let voltage = self.rng.random_range(2200..2900u64);
                SensorReading::new(
                    self.scale.scale(t),
                    (humidity * 10.0) as u64,
                    light as u64,
                    voltage,
                )
            })
            .collect()
    }

    /// The domain scale in use.
    pub fn scale(&self) -> DomainScale {
        self.scale
    }

    /// Number of sensors.
    pub fn num_sensors(&self) -> usize {
        self.temps.num_sensors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sies_core::query::Attribute;

    #[test]
    fn readings_have_plausible_channels() {
        let mut generator = ReadingGenerator::new(2, 64, DomainScale::DEFAULT);
        let readings = generator.epoch_readings(0);
        assert_eq!(readings.len(), 64);
        for r in &readings {
            let t = r.get(Attribute::Temperature);
            assert!((1800..=5000).contains(&t));
            let h = r.get(Attribute::Humidity);
            assert!((150..=950).contains(&h));
            let v = r.get(Attribute::Voltage);
            assert!((2200..2900).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ReadingGenerator::new(5, 8, DomainScale::DEFAULT);
        let mut b = ReadingGenerator::new(5, 8, DomainScale::DEFAULT);
        assert_eq!(a.epoch_readings(3), b.epoch_readings(3));
    }

    #[test]
    fn humidity_anticorrelates_with_temperature() {
        let mut generator = ReadingGenerator::new(9, 200, DomainScale::DEFAULT);
        let readings = generator.epoch_readings(0);
        // Pearson correlation between temp and humidity should be negative.
        let n = readings.len() as f64;
        let (mut st, mut sh, mut stt, mut shh, mut sth) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for r in &readings {
            let t = r.get(Attribute::Temperature) as f64;
            let h = r.get(Attribute::Humidity) as f64;
            st += t;
            sh += h;
            stt += t * t;
            shh += h * h;
            sth += t * h;
        }
        let cov = sth / n - (st / n) * (sh / n);
        let var_t = stt / n - (st / n) * (st / n);
        let var_h = shh / n - (sh / n) * (sh / n);
        let corr = cov / (var_t.sqrt() * var_h.sqrt());
        assert!(corr < -0.5, "correlation {corr} not strongly negative");
    }
}
