#![warn(missing_docs)]

//! # sies-workload
//!
//! Workload generation for the SIES reproduction: a seeded Intel-Lab-like
//! temperature stream (the paper's dataset substitute — see DESIGN.md §4),
//! multi-attribute readings for WHERE-predicate queries, domain scaling
//! `×10^k`, and the Table-IV parameter sweeps.

pub mod intel_lab;
pub mod readings;
pub mod sweep;

pub use intel_lab::{DomainScale, IntelLabGenerator, UniformGenerator, TEMP_MAX, TEMP_MIN};
pub use readings::ReadingGenerator;
pub use sweep::Config;
