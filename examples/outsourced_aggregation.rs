//! Outsourced aggregation under attack: an untrusted provider runs the
//! aggregation tree, and SIES catches everything it tries.
//!
//! Models the paper's second motivating setting (§I): the aggregation
//! infrastructure is delegated to a third-party provider that may be
//! malicious. We run a full tree through the network engine, let the
//! "provider" tamper/drop/duplicate/replay, and show the querier rejecting
//! each corrupted epoch while accepting the honest ones. Query
//! dissemination itself is authenticated with the μTesla-style broadcast.
//!
//! ```text
//! cargo run -p sies-integration --example outsourced_aggregation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::mutesla::{Broadcaster, Receiver};
use sies_core::SystemParams;
use sies_net::engine::{Attack, Engine};
use sies_net::{SiesDeployment, Topology};
use sies_workload::intel_lab::{DomainScale, IntelLabGenerator};
use std::collections::HashSet;

fn main() {
    let n = 256u64;
    let fanout = 4;
    let mut rng = StdRng::seed_from_u64(404);

    // --- Authenticated query dissemination (Theorem 3) -----------------
    let broadcaster = Broadcaster::new(&mut rng, 16, 2);
    let mut sensor_rx = Receiver::new(broadcaster.commitment(), 2);
    let query_packet = broadcaster.broadcast(1, b"SELECT SUM(temp) FROM Sensors EPOCH 1s");
    sensor_rx
        .receive(1, query_packet)
        .expect("security condition holds");
    let verified_msgs = sensor_rx
        .on_disclosure(broadcaster.disclose(1))
        .expect("chain verifies");
    println!(
        "query authenticated via muTesla: {:?}",
        String::from_utf8_lossy(&verified_msgs[0])
    );

    // --- The outsourced network -----------------------------------------
    let deployment = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    let topology = Topology::complete_tree(n, fanout);
    let mut engine = Engine::new(&deployment, &topology);
    let mut workload = IntelLabGenerator::new(9, n as usize);
    let victim_source = topology.source_node(17).unwrap();
    let victim_agg = topology.node(topology.root()).children[0];

    let scenarios: Vec<(&str, Vec<Attack>)> = vec![
        ("honest epoch", vec![]),
        (
            "provider tampers with a PSR",
            vec![Attack::TamperAtNode(victim_agg)],
        ),
        (
            "provider drops a source",
            vec![Attack::DropAtNode(victim_source)],
        ),
        (
            "provider duplicates a source",
            vec![Attack::DuplicateAtNode(victim_source)],
        ),
        (
            "provider replays yesterday's result",
            vec![Attack::ReplayFinal],
        ),
        ("honest epoch again", vec![]),
    ];

    for (epoch, (label, attacks)) in scenarios.iter().enumerate() {
        let epoch = epoch as u64;
        let values = workload.epoch_values(epoch, DomainScale::DEFAULT);
        let expected: u64 = values.iter().sum();
        let outcome = engine.run_epoch_with(epoch, &values, &HashSet::new(), attacks);
        match outcome.result {
            Ok(res) => {
                assert_eq!(res.sum as u64, expected);
                println!(
                    "epoch {epoch} ({label}): ACCEPTED, exact SUM = {} ({} bytes to querier)",
                    res.sum, outcome.stats.bytes.agg_to_querier
                );
            }
            Err(e) => {
                assert!(!attacks.is_empty(), "honest epoch must verify");
                println!("epoch {epoch} ({label}): REJECTED - {e}");
            }
        }
    }

    println!("\nevery attack detected; every honest epoch verified exactly");
}
