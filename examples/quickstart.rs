//! Quickstart: set up a SIES network, run a few epochs of an exact SUM
//! query over encrypted readings, and verify the results.
//!
//! ```text
//! cargo run -p sies-integration --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::{setup, Source, SystemParams};
use sies_workload::intel_lab::{DomainScale, IntelLabGenerator};

fn main() {
    // 64 temperature sensors reporting scaled readings in [1800, 5000].
    let num_sources = 64u64;
    let mut rng = StdRng::seed_from_u64(2026);

    // Setup phase: the querier generates K, k_1..k_N and the prime p, and
    // registers credentials at every source.
    let params = SystemParams::new(num_sources).expect("valid parameters");
    let (querier, credentials, aggregator) = setup(&mut rng, params);
    let sources: Vec<Source> = credentials.into_iter().map(Source::new).collect();

    let mut workload = IntelLabGenerator::new(7, num_sources as usize);
    let scale = DomainScale::DEFAULT;

    println!("epoch | verified SUM (scaled) | SUM in deg C");
    for epoch in 0..5u64 {
        let values = workload.epoch_values(epoch, scale);
        let true_sum: u64 = values.iter().sum();

        // Initialization phase at each source: encrypt reading + share.
        let psrs: Vec<_> = sources
            .iter()
            .zip(&values)
            .map(|(s, &v)| s.initialize(epoch, v).expect("value in range"))
            .collect();

        // Merging phase in-network: aggregators add ciphertexts mod p.
        // (Here one aggregator stands in for the whole tree — merging is
        // associative, so the tree shape does not affect the result.)
        let final_psr = aggregator.merge(&psrs).expect("non-empty");

        // Evaluation phase at the querier: decrypt, verify, extract.
        let verified = querier
            .evaluate(&final_psr, epoch)
            .expect("integrity holds");
        assert_eq!(verified.sum, true_sum, "SIES sums are exact");
        println!(
            "{epoch:>5} | {:>21} | {:>10.2}",
            verified.sum,
            scale.unscale(verified.sum)
        );
    }

    println!("\nall epochs verified: confidentiality + integrity + freshness held");
}
