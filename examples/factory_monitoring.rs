//! Factory monitoring: predicate-filtered derived aggregates over SIES.
//!
//! The paper's intro motivates security-critical deployments like factory
//! monitoring. This example registers three continuous queries —
//!
//! ```sql
//! SELECT COUNT(*)            FROM Sensors WHERE temperature > 40C
//! SELECT AVG(temperature)    FROM Sensors WHERE humidity < 60%
//! SELECT STDDEV(temperature) FROM Sensors
//! ```
//!
//! — compiles each into its SUM sub-queries (COUNT, SUM, SUM-of-squares),
//! runs one SIES instance per sub-query, and combines the verified
//! sub-results. Run with:
//!
//! ```text
//! cargo run -p sies-integration --example factory_monitoring
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_core::query::{Aggregate, CmpOp, Predicate, Query, QueryResult};
use sies_core::{setup, Attribute, ResultWidth, Source, SystemParams};
use sies_crypto::DEFAULT_PRIME_256;
use sies_workload::intel_lab::DomainScale;
use sies_workload::ReadingGenerator;

fn main() {
    let num_sources = 128u64;
    let scale = DomainScale::DEFAULT; // temperatures scaled x100
    let mut rng = StdRng::seed_from_u64(11);

    // SUM of squared scaled temperatures can exceed 2^32: use the 8-byte
    // result field (paper footnote 1).
    let params = SystemParams::with_prime(num_sources, DEFAULT_PRIME_256, ResultWidth::U64)
        .expect("valid parameters");
    let (querier, creds, aggregator) = setup(&mut rng, params);
    let sources: Vec<Source> = creds.into_iter().map(Source::new).collect();

    let queries = vec![
        (
            "COUNT sensors with temperature > 30 C",
            Query {
                aggregate: Aggregate::Count,
                predicate: Predicate::Cmp(Attribute::Temperature, CmpOp::Gt, scale.scale(30.0)),
                epoch_duration_ms: 1000,
            },
        ),
        (
            "AVG temperature where humidity < 75 %",
            Query {
                aggregate: Aggregate::Avg(Attribute::Temperature),
                predicate: Predicate::Cmp(Attribute::Humidity, CmpOp::Lt, 750),
                epoch_duration_ms: 1000,
            },
        ),
        (
            "STDDEV of temperature (all sensors)",
            Query {
                aggregate: Aggregate::StdDev(Attribute::Temperature),
                predicate: Predicate::True,
                epoch_duration_ms: 1000,
            },
        ),
    ];

    let mut workload = ReadingGenerator::new(3, num_sources as usize, scale);

    for epoch in 0..3u64 {
        let readings = workload.epoch_readings(epoch);
        println!("--- epoch {epoch} ---");
        for (label, query) in &queries {
            let plan = query.plan();
            // One SIES round per SUM sub-query. Sub-queries are keyed into
            // disjoint epochs (epoch * stride + term index) so each
            // ciphertext uses fresh keys.
            let mut sums = Vec::with_capacity(plan.terms().len());
            for (term_idx, _) in plan.terms().iter().enumerate() {
                let sub_epoch = epoch * 16 + term_idx as u64;
                let psrs: Vec<_> = sources
                    .iter()
                    .zip(&readings)
                    .map(|(s, r)| {
                        let value = plan.source_values(r)[term_idx];
                        s.initialize(sub_epoch, value).expect("in range")
                    })
                    .collect();
                let final_psr = aggregator.merge(&psrs).expect("non-empty");
                let verified = querier.evaluate(&final_psr, sub_epoch).expect("integrity");
                sums.push(verified.sum);
            }
            match plan.finalize(&sums).expect("arity matches") {
                QueryResult::Exact(v) => println!("  {label}: {v}"),
                QueryResult::Real(v) => {
                    // Scaled-integer domain: divide AVG/STDDEV back.
                    println!("  {label}: {:.3}", v / 100.0);
                }
            }
        }
    }
    println!("\nevery sub-aggregate was transported encrypted and verified for integrity");
}
