//! Side-by-side comparison of SIES against the paper's baselines on the
//! same network: exactness, security verdicts, per-edge bytes, and radio
//! energy — the qualitative content of the paper's Tables III and V at
//! example scale.
//!
//! ```text
//! cargo run -p sies-integration --example scheme_comparison --release
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use sies_baselines::cmt::CmtDeployment;
use sies_baselines::paillier_agg::PaillierDeployment;
use sies_baselines::secoa::SecoaSum;
use sies_core::SystemParams;
use sies_net::engine::Engine;
use sies_net::scheme::AggregationScheme;
use sies_net::{RadioModel, SiesDeployment, Topology};
use sies_workload::intel_lab::{DomainScale, IntelLabGenerator};

fn run_scheme<S: AggregationScheme>(scheme: &S, topo: &Topology, values: &[u64], true_sum: u64) {
    let mut engine = Engine::new(scheme, topo);
    let out = engine.run_epoch(0, values);
    let radio = RadioModel::default();
    match out.result {
        Ok(res) => {
            let err = (res.sum - true_sum as f64).abs() / true_sum as f64 * 100.0;
            println!(
                "{:<7} | sum {:>12.1} | err {:>6.2}% | integrity {:<5} | S-A {:>8.0} B | A-Q {:>8} B | tx {:>10.6} J | lifetime {:>9.0} epochs",
                scheme.name(),
                res.sum,
                err,
                res.integrity_checked,
                out.stats.bytes.per_sa_edge(),
                out.stats.bytes.agg_to_querier,
                out.stats.energy_tx,
                radio.lifetime_epochs(2.0, out.stats.bytes.per_sa_edge() as usize),
            );
        }
        Err(e) => println!("{:<7} | FAILED: {e}", scheme.name()),
    }
}

fn main() {
    let n = 64u64;
    let fanout = 4;
    // Reduced SECOA parameters keep the example quick; the repro binary
    // runs the full J = 300 / 1024-bit configuration.
    let secoa_j = 60;
    let rsa_bits = 512;

    let mut rng = StdRng::seed_from_u64(7);
    let topo = Topology::complete_tree(n, fanout);
    let mut workload = IntelLabGenerator::new(21, n as usize);
    let values = workload.epoch_values(0, DomainScale::DEFAULT);
    let true_sum: u64 = values.iter().sum();
    println!("N = {n}, F = {fanout}, true SUM = {true_sum}\n");

    let sies = SiesDeployment::new(&mut rng, SystemParams::new(n).unwrap());
    run_scheme(&sies, &topo, &values, true_sum);

    let cmt = CmtDeployment::new(&mut rng, n);
    run_scheme(&cmt, &topo, &values, true_sum);

    let secoa = SecoaSum::new(&mut rng, n, secoa_j, rsa_bits);
    run_scheme(&secoa, &topo, &values, true_sum);

    let paillier = PaillierDeployment::new(&mut rng, n, rsa_bits);
    run_scheme(&paillier, &topo, &values, true_sum);

    println!(
        "\nSIES: exact + confidential + verified, 32 B edges.\n\
         CMT:  exact + confidential, but integrity column is 'false' - tampering would pass.\n\
         SECOA: verified but approximate (nonzero err), and orders of magnitude more bytes.\n\
         Paillier (ODB-style, sec. II-C): exact + confidential, no integrity, public-key cost\n\
         per reading and wide ciphertexts - unfit for resource-constrained sources."
    );
}
