//! Offline stand-in for `criterion`.
//!
//! Implements the subset this workspace's benches use: benchmark
//! groups, `bench_function`/`bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock mean — no outlier analysis, no plots, no
//! statistics. Good enough to rank implementations and spot order-of-
//! magnitude regressions offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    #[allow(dead_code)]
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-based, so
    /// the requested sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measurement: self.criterion.measurement,
            result: None,
        };
        f(&mut bencher);
        report(&id.id, bencher.result);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            measurement: self.criterion.measurement,
            result: None,
        };
        f(&mut bencher, input);
        report(&id.id, bencher.result);
        self
    }

    /// Ends the group (no-op beyond symmetry with the real API).
    pub fn finish(self) {}
}

fn report(id: &str, result: Option<Duration>) {
    match result {
        Some(mean) => eprintln!("{id:<44} {:>12.3} ns/iter", mean.as_secs_f64() * 1e9),
        None => eprintln!("{id:<44} (no measurement)"),
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    measurement: Duration,
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, reporting the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find an iteration count that fills a decent
        // fraction of the measurement window.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.measurement / 10 || n >= 1 << 24 {
                break elapsed / (n as u32);
            }
            n = n.saturating_mul(8);
        };
        // Measurement: as many batches as fit in the window.
        let batches = ((self.measurement.as_nanos()
            / per_iter.as_nanos().max(1).saturating_mul(n as u128))
        .max(1) as u64)
            .min(1 << 16);
        let start = Instant::now();
        for _ in 0..batches * n {
            std::hint::black_box(routine());
        }
        self.result = Some(start.elapsed() / ((batches * n) as u32));
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
        assert!(ran);
    }
}
