//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: `proptest!` test blocks,
//! range and `any::<T>()` strategies, `prop_map`/`prop_filter`,
//! `collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! - sampling is seeded deterministically per test (reproducible runs,
//!   no `PROPTEST_*` env handling);
//! - failing cases are not shrunk — the failing inputs are reported
//!   as sampled;
//! - rejected cases (`prop_assume!`/`prop_filter`) are retried up to a
//!   fixed budget instead of being globally accounted.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// How many extra samples to draw before giving up on a filter/assume.
const REJECT_BUDGET: u32 = 4096;

/// Why a single sampled case did not produce a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; draw a fresh one.
    Reject,
    /// The case failed an assertion.
    Fail(String),
}

/// Result of running one sampled case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default (256) is overkill for CI on the heavier
        // end-to-end properties; 64 keeps runs fast yet meaningful.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a seeded sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true, retrying up to a
    /// fixed budget (then panicking with `reason`).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..REJECT_BUDGET {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {} consecutive samples",
            self.reason, REJECT_BUDGET
        );
    }
}

/// Strategy yielding a fixed value (real proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Types with a canonical "anything goes" strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws a fully random value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Uniform in [0, 1): adequate for the properties tested here.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: fully random values.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.random_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A `Vec` strategy drawing lengths from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runs one property to `config.cases` successful cases.
///
/// This is the engine behind the `proptest!` macro; `run_case` samples
/// its own inputs from the provided RNG and returns a
/// [`TestCaseResult`].
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut run_case: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    // Deterministic per-test seed: stable across runs, different per
    // test name so sibling properties don't see identical streams.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match run_case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= REJECT_BUDGET,
                    "property `{name}`: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {passed} passing case(s): {msg}");
            }
        }
    }
}

/// Declares property tests. Each `fn` samples its `in` arguments anew
/// for every case and must hold for all of them.
#[macro_export]
macro_rules! proptest {
    // With a block-level config attribute.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    // Default config.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Rejects the current case unless `cond` holds; a fresh case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 5usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(
            v in any::<u64>().prop_map(|x| x % 100).prop_filter("even", |x| x % 2 == 0)
        ) {
            prop_assert!(v < 100 && v % 2 == 0);
        }

        #[test]
        fn vec_sizes_respected(
            fixed in collection::vec(0u64..10, 4),
            ranged in collection::vec(any::<u8>(), 1..5),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..5).contains(&ranged.len()));
        }

        #[test]
        fn arrays_sample(a in any::<[u8; 20]>(), b in any::<[u64; 4]>()) {
            prop_assert_eq!(a.len(), 20);
            prop_assert_eq!(b.len(), 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn assume_rejects_and_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(crate::TestCaseError::Fail("nope".into()))
        });
    }
}
