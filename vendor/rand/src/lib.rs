//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the workspace vendors the small slice of `rand`'s
//! API it actually uses: [`RngCore`], [`SeedableRng`], [`Rng`] with
//! `random_range`/`random_bool`, and a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64).
//!
//! The generator is *not* the upstream `StdRng` (ChaCha12), so seeded
//! streams differ from upstream — everything in this workspace derives its
//! randomness from explicit seeds and asserts statistical or structural
//! properties, never exact upstream streams, so this is safe.

#![warn(missing_docs)]

/// The core trait every random number generator implements.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through SplitMix64
    /// the way upstream `rand` documents.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (including trait objects).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        distr::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distribution helpers backing [`Rng::random_range`].
pub mod distr {
    use super::RngCore;

    /// Samples a uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A range that can be sampled to produce a `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types with a uniform sampler over `[lo, hi]`.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Samples uniformly from `[lo, hi]` (both inclusive).
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// The immediate predecessor of `v` (for converting `..hi` to
        /// `..=hi-1`); `None` if `v` is the type minimum.
        fn pred(v: Self) -> Option<Self>;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "cannot sample an empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128);
                    if span == u128::MAX {
                        // Full-width range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    let span = span + 1;
                    // 128-bit multiply-shift avoids modulo bias for all
                    // spans this workspace samples.
                    let r = rng.next_u64() as u128;
                    let v = (r * span) >> 64;
                    (lo as u128).wrapping_add(v) as $t
                }
                fn pred(v: Self) -> Option<Self> {
                    v.checked_sub(1)
                }
            }
        )*};
    }
    impl_uniform_int!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_signed {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "cannot sample an empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = rng.next_u64() as u128;
                    let v = ((r * span) >> 64) as i128;
                    (lo as i128 + v) as $t
                }
                fn pred(v: Self) -> Option<Self> {
                    v.checked_sub(1)
                }
            }
        )*};
    }
    impl_uniform_signed!(i8, i16, i32, i64, isize);

    macro_rules! impl_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                    assert!(lo <= hi, "cannot sample an empty range");
                    lo + (unit_f64(rng) as $t) * (hi - lo)
                }
                fn pred(v: Self) -> Option<Self> {
                    // Floats use half-open sampling directly; `..hi` and
                    // `..=hi` coincide for practical purposes.
                    Some(v)
                }
            }
        )*};
    }
    impl_uniform_float!(f32, f64);

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let hi = T::pred(self.end).expect("cannot sample an empty range");
            T::sample_inclusive(rng, self.start, hi)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    /// SplitMix64, used for seed expansion (public for reuse by the
    /// vendored proptest).
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Creates a SplitMix64 stream from `state`.
        pub fn new(state: u64) -> Self {
            SplitMix64 { state }
        }

        /// Next 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use distr::SplitMix64;

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Statistically strong and fast; **not** cryptographically secure and
    /// **not** stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                let mut sm = super::SplitMix64::new(0x5EED_0000_0000_0001);
                for slot in &mut s {
                    *slot = sm.next_u64();
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_values_cover_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some bucket never sampled: {seen:?}"
        );
    }

    #[test]
    fn unit_f64_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_rngcore_supports_random_range() {
        let mut concrete = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut concrete;
        let v = dyn_rng.random_range(1usize..=4);
        assert!((1..=4).contains(&v));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
