//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! crate's [`Content`] tree.
//!
//! Supports what this workspace uses: [`to_string`]/[`to_string_pretty`],
//! [`from_str`] with a small recursive-descent JSON parser, the [`json!`]
//! macro for flat objects/arrays, and the [`Value`] alias.

#![warn(missing_docs)]

pub use serde::Content;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed or constructed JSON value (alias of the serde value tree).
pub type Value = Content;

/// Error raised while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

/// Serializes `value` into a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` into a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::new)
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Match serde_json: whole floats render with a trailing `.0`.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => return Err(Error::new(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => return Err(Error::new(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }
}

/// Builds a [`Value`] in place. Supports flat objects, arrays, and bare
/// expressions — the shapes this workspace constructs.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Seq(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Map(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Converts any [`Serialize`] value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_content()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let s = to_string_pretty(&vec![1i32, 2, 3]).unwrap();
        assert_eq!(from_str::<Vec<i32>>(&s).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn json_macro_object() {
        let v = json!({ "a": 1u64, "b": 2.5f64, "s": "hi" });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"a":1,"b":2.5,"s":"hi"}"#);
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v: Value = from_str(r#"{"k": [1, -2, 3.5, "a\nb", null, true]}"#).unwrap();
        let Content::Map(entries) = &v else {
            panic!("expected map")
        };
        let Content::Seq(items) = &entries[0].1 else {
            panic!("expected seq")
        };
        assert_eq!(items[0], Content::U64(1));
        assert_eq!(items[1], Content::I64(-2));
        assert_eq!(items[2], Content::F64(3.5));
        assert_eq!(items[3], Content::Str("a\nb".into()));
        assert_eq!(items[4], Content::Null);
        assert_eq!(items[5], Content::Bool(true));
    }

    #[test]
    fn pretty_prints_with_indent() {
        let s = to_string_pretty(&json!({ "x": 1u64 })).unwrap();
        assert_eq!(s, "{\n  \"x\": 1\n}");
    }
}
