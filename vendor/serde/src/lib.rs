//! Offline stand-in for `serde`: a self-describing value tree
//! ([`Content`]) plus [`Serialize`]/[`Deserialize`] traits and a derive
//! macro re-export.
//!
//! The real serde serializes through a generic `Serializer` visitor; this
//! workspace only ever serializes to JSON (via the vendored `serde_json`),
//! so a concrete intermediate tree is sufficient and far smaller.

#![warn(missing_docs)]

// The derive macros live in the macro namespace, the traits below in the
// type namespace; sharing the `Serialize`/`Deserialize` names makes
// `use serde::Serialize;` import both, exactly like the real crate's
// `derive` feature.
pub use serde_derive::Deserialize;
pub use serde_derive::Serialize;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map (field order preserved).
    Map(Vec<(String, Content)>),
}

/// Types that can serialize themselves into a [`Content`] tree.
///
/// The derive macro (`#[derive(Serialize)]`) implements this for plain
/// named-field structs.
pub trait Serialize {
    /// Builds the value tree.
    fn to_content(&self) -> Content;
}

/// Types that can reconstruct themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reads a value back out of a [`Content`] tree.
    fn from_content(content: &Content) -> Result<Self, String>;
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) if *v >= 0 => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as $t),
                    other => Err(format!("expected unsigned integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}
impl_ser_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.to_content()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.to_content()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.to_content()).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, got {other:?}")),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, String> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_serialize() {
        assert_eq!(3u64.to_content(), Content::U64(3));
        assert_eq!((-2i32).to_content(), Content::I64(-2));
        assert_eq!(1.5f64.to_content(), Content::F64(1.5));
        assert_eq!("x".to_content(), Content::Str("x".into()));
        assert_eq!(
            vec![1u8, 2].to_content(),
            Content::Seq(vec![Content::U64(1), Content::U64(2)])
        );
    }

    #[test]
    fn deserialize_round_trips() {
        let c = vec![1i32, 2, 3].to_content();
        assert_eq!(Vec::<i32>::from_content(&c).unwrap(), vec![1, 2, 3]);
        assert!(i32::from_content(&Content::Str("no".into())).is_err());
    }
}
