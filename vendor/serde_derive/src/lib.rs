//! Derive macro for the vendored `serde` stand-in.
//!
//! Supports exactly what this workspace derives: `Serialize` (and, for
//! symmetry, `Deserialize`) on plain non-generic structs with named
//! fields. Written against `proc_macro` alone so it builds offline with
//! no syn/quote dependency.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a `struct Name { field: Type, ... }` item.
struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and named-field list from a derive input.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/qualifier tokens until the
    // `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, found {other:?}"),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" || id.to_string() == "union" => {
                panic!("the vendored serde derive supports only structs with named fields");
            }
            _ => {}
        }
    }
    let name = name.expect("no `struct` keyword in derive input");

    // Find the brace-delimited field body (skipping generics would go
    // here; the workspace derives only non-generic structs).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("the vendored serde derive does not support generic structs")
            }
            Some(_) => continue,
            None => panic!("struct `{name}` has no braced field body (tuple structs unsupported)"),
        }
    };

    // Parse `(#[attr])* (pub)? ident : Type ,` sequences. The type is
    // consumed by skipping to the next top-level comma.
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    'outer: loop {
        // Skip field attributes.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next(); // the [...] group
                }
                _ => break,
            }
        }
        // Field name (skipping visibility).
        let field = loop {
            match toks.next() {
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // `pub(crate)` carries a parenthesized group.
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in field list: {other}"),
                None => break 'outer,
            }
        };
        fields.push(field);
        // Expect `:` then skip the type up to the next top-level comma.
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break 'outer,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth <= 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {}
            }
            toks.next();
        }
    }
    StructDef { name, fields }
}

/// Derives `serde::Serialize` by building a `Content::Map` of the fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let entries: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` by reading fields back out of a
/// `Content::Map`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let fields: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(
                     map.iter().find(|(k, _)| k == \"{f}\").map(|(_, v)| v)
                         .ok_or_else(|| ::std::string::String::from(\"missing field {f}\"))?
                 )?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 let ::serde::Content::Map(map) = content else {{\n\
                     return ::std::result::Result::Err(::std::string::String::from(\"expected map for {name}\"));\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
